//! Model-specific registers and the VMX MSR intercept bitmaps.
//!
//! Covirt lists MSR accesses among the operations it can protect. VMX
//! provides per-MSR read/write intercept bitmaps covering the low
//! (`0..=0x1fff`) and high (`0xc000_0000..=0xc000_1fff`) ranges; accesses to
//! MSRs outside those ranges unconditionally exit. The model reproduces
//! exactly that dispatch.

use parking_lot::RwLock;
use std::collections::HashMap;

/// IA32_APIC_BASE.
pub const IA32_APIC_BASE: u32 = 0x1b;
/// IA32_EFER.
pub const IA32_EFER: u32 = 0xc000_0080;
/// IA32_FS_BASE.
pub const IA32_FS_BASE: u32 = 0xc000_0100;
/// IA32_GS_BASE.
pub const IA32_GS_BASE: u32 = 0xc000_0101;
/// IA32_TSC_DEADLINE.
pub const IA32_TSC_DEADLINE: u32 = 0x6e0;
/// IA32_MISC_ENABLE.
pub const IA32_MISC_ENABLE: u32 = 0x1a0;
/// A machine-check bank control MSR — something a guest must never touch.
pub const IA32_MC0_CTL: u32 = 0x400;

/// Per-core MSR file.
#[derive(Default)]
pub struct MsrFile {
    values: RwLock<HashMap<u32, u64>>,
}

impl MsrFile {
    /// Create an MSR file with architectural defaults.
    pub fn new() -> Self {
        let f = MsrFile::default();
        f.write(IA32_EFER, 0x500); // LME | LMA — long mode, as Pisces boots kernels
        f.write(IA32_MISC_ENABLE, 1);
        f
    }

    /// RDMSR.
    pub fn read(&self, index: u32) -> u64 {
        *self.values.read().get(&index).unwrap_or(&0)
    }

    /// WRMSR.
    pub fn write(&self, index: u32, value: u64) {
        self.values.write().insert(index, value);
    }
}

const LOW_BASE: u32 = 0;
const LOW_END: u32 = 0x2000;
const HIGH_BASE: u32 = 0xc000_0000;
const HIGH_END: u32 = 0xc000_2000;
const WORDS: usize = (0x2000 / 64) as usize;

/// VMX-style MSR intercept bitmap: four 1-KiB bitmaps (read-low, read-high,
/// write-low, write-high). A set bit means the access causes a VM exit.
pub struct MsrBitmap {
    read_low: [u64; WORDS],
    read_high: [u64; WORDS],
    write_low: [u64; WORDS],
    write_high: [u64; WORDS],
}

impl Default for MsrBitmap {
    fn default() -> Self {
        Self::intercept_none()
    }
}

impl MsrBitmap {
    /// A bitmap that intercepts nothing in the covered ranges (accesses
    /// outside the ranges still exit, per VMX).
    pub fn intercept_none() -> Self {
        MsrBitmap {
            read_low: [0; WORDS],
            read_high: [0; WORDS],
            write_low: [0; WORDS],
            write_high: [0; WORDS],
        }
    }

    /// A bitmap that intercepts everything.
    pub fn intercept_all() -> Self {
        MsrBitmap {
            read_low: [u64::MAX; WORDS],
            read_high: [u64::MAX; WORDS],
            write_low: [u64::MAX; WORDS],
            write_high: [u64::MAX; WORDS],
        }
    }

    fn slot(index: u32) -> Option<(bool, usize, u64)> {
        if (LOW_BASE..LOW_END).contains(&index) {
            let bit = index - LOW_BASE;
            Some((true, (bit / 64) as usize, 1u64 << (bit % 64)))
        } else if (HIGH_BASE..HIGH_END).contains(&index) {
            let bit = index - HIGH_BASE;
            Some((false, (bit / 64) as usize, 1u64 << (bit % 64)))
        } else {
            None
        }
    }

    /// Mark reads of `index` as intercepted.
    pub fn intercept_read(&mut self, index: u32, intercept: bool) {
        if let Some((low, w, m)) = Self::slot(index) {
            let arr = if low {
                &mut self.read_low
            } else {
                &mut self.read_high
            };
            if intercept {
                arr[w] |= m;
            } else {
                arr[w] &= !m;
            }
        }
    }

    /// Mark writes of `index` as intercepted.
    pub fn intercept_write(&mut self, index: u32, intercept: bool) {
        if let Some((low, w, m)) = Self::slot(index) {
            let arr = if low {
                &mut self.write_low
            } else {
                &mut self.write_high
            };
            if intercept {
                arr[w] |= m;
            } else {
                arr[w] &= !m;
            }
        }
    }

    /// Does a read of `index` exit? (Out-of-range MSRs always exit.)
    pub fn read_exits(&self, index: u32) -> bool {
        match Self::slot(index) {
            Some((low, w, m)) => {
                let arr = if low { &self.read_low } else { &self.read_high };
                arr[w] & m != 0
            }
            None => true,
        }
    }

    /// Does a write of `index` exit?
    pub fn write_exits(&self, index: u32) -> bool {
        match Self::slot(index) {
            Some((low, w, m)) => {
                let arr = if low {
                    &self.write_low
                } else {
                    &self.write_high
                };
                arr[w] & m != 0
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_file_defaults_and_rw() {
        let f = MsrFile::new();
        assert_eq!(f.read(IA32_EFER), 0x500);
        assert_eq!(f.read(0x1234), 0);
        f.write(IA32_FS_BASE, 0xdead_0000);
        assert_eq!(f.read(IA32_FS_BASE), 0xdead_0000);
    }

    #[test]
    fn bitmap_default_passes_in_range() {
        let b = MsrBitmap::intercept_none();
        assert!(!b.read_exits(IA32_APIC_BASE));
        assert!(!b.write_exits(IA32_EFER));
    }

    #[test]
    fn out_of_range_always_exits() {
        let b = MsrBitmap::intercept_none();
        assert!(b.read_exits(0x8000_0000));
        assert!(b.write_exits(0x4000_0000));
    }

    #[test]
    fn selective_intercepts() {
        let mut b = MsrBitmap::intercept_none();
        b.intercept_write(IA32_MC0_CTL, true);
        assert!(b.write_exits(IA32_MC0_CTL));
        assert!(!b.read_exits(IA32_MC0_CTL));
        b.intercept_write(IA32_MC0_CTL, false);
        assert!(!b.write_exits(IA32_MC0_CTL));
    }

    #[test]
    fn high_range_intercepts() {
        let mut b = MsrBitmap::intercept_none();
        b.intercept_read(IA32_GS_BASE, true);
        assert!(b.read_exits(IA32_GS_BASE));
        assert!(!b.write_exits(IA32_GS_BASE));
    }

    #[test]
    fn intercept_all_exits_everything() {
        let b = MsrBitmap::intercept_all();
        assert!(b.read_exits(IA32_APIC_BASE));
        assert!(b.write_exits(IA32_GS_BASE));
    }
}
