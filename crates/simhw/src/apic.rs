//! Local APIC model: the ICR (IPI transmission), EOI, and the LAPIC timer.
//!
//! IPI *transmission* is the resource Covirt's second protection feature
//! guards: in Hobbes, per-core vectors are a globally allocatable
//! application resource, and a misdirected ICR write can mimic device
//! interrupts on a victim OS/R. The model exposes the ICR as a register
//! write ([`LocalApic::icr_write`]) so the hypervisor can interpose on it
//! exactly as VMX's APIC-virtualization does.
//!
//! The timer is a deadline in TSC cycles, polled at safe points — the
//! standard discrete-event treatment, and a faithful model of an LWK where
//! ticks are rare and handled at quiescent points.

use crate::clock::TscClock;
use crate::error::HwResult;
use crate::interconnect::{DeliveryMode, Interconnect, IpiDest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// ICR delivery-mode field values (subset).
pub const ICR_MODE_FIXED: u64 = 0b000;
/// NMI delivery mode.
pub const ICR_MODE_NMI: u64 = 0b100;

/// Destination shorthand field values.
pub const ICR_SH_NONE: u64 = 0b00;
/// Self shorthand.
pub const ICR_SH_SELF: u64 = 0b01;
/// All including self.
pub const ICR_SH_ALL_INC: u64 = 0b10;
/// All excluding self.
pub const ICR_SH_ALL_EXC: u64 = 0b11;

/// A decoded ICR write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IcrCommand {
    /// Interrupt vector (ignored for NMI).
    pub vector: u8,
    /// Delivery mode (`ICR_MODE_*`).
    pub mode: u64,
    /// Destination APIC id (physical mode).
    pub dest: u32,
    /// Destination shorthand (`ICR_SH_*`).
    pub shorthand: u64,
}

impl IcrCommand {
    /// Encode into the x2APIC 64-bit ICR layout (vector 0..7, delivery mode
    /// 8..10, shorthand 18..19, destination 32..63).
    pub fn encode(&self) -> u64 {
        (self.vector as u64)
            | (self.mode << 8)
            | (self.shorthand << 18)
            | ((self.dest as u64) << 32)
    }

    /// Decode from the x2APIC 64-bit ICR layout.
    pub fn decode(raw: u64) -> Self {
        IcrCommand {
            vector: (raw & 0xff) as u8,
            mode: (raw >> 8) & 0b111,
            dest: (raw >> 32) as u32,
            shorthand: (raw >> 18) & 0b11,
        }
    }

    /// Resolve the destination relative to the sending core.
    pub fn resolve_dest(&self, sender: usize) -> IpiDest {
        match self.shorthand {
            ICR_SH_SELF => IpiDest::Core(sender),
            ICR_SH_ALL_INC => IpiDest::AllIncludingSelf,
            ICR_SH_ALL_EXC => IpiDest::AllExcludingSelf,
            _ => IpiDest::Core(self.dest as usize),
        }
    }

    /// The interconnect delivery mode.
    pub fn delivery(&self) -> DeliveryMode {
        if self.mode == ICR_MODE_NMI {
            DeliveryMode::Nmi
        } else {
            DeliveryMode::Fixed(self.vector)
        }
    }
}

/// LAPIC timer modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerMode {
    /// Timer disarmed.
    Off,
    /// Fire once at the deadline.
    OneShot,
    /// Fire every period.
    Periodic,
}

/// The per-core local APIC.
pub struct LocalApic {
    /// This APIC's id (== core id on our node).
    pub id: usize,
    interconnect: Arc<Interconnect>,
    clock: Arc<TscClock>,
    /// Timer deadline in TSC cycles; 0 = disarmed.
    timer_deadline: AtomicU64,
    /// Timer period in cycles (0 = one-shot).
    timer_period: AtomicU64,
    /// Vector the timer delivers.
    timer_vector: AtomicU64,
    /// ICR writes performed (instrumentation).
    icr_writes: AtomicU64,
}

impl LocalApic {
    /// Build the APIC for core `id`.
    pub fn new(id: usize, interconnect: Arc<Interconnect>, clock: Arc<TscClock>) -> Self {
        LocalApic {
            id,
            interconnect,
            clock,
            timer_deadline: AtomicU64::new(0),
            timer_period: AtomicU64::new(0),
            timer_vector: AtomicU64::new(0xec),
            icr_writes: AtomicU64::new(0),
        }
    }

    /// Write the ICR: decodes the command and delivers the interrupt
    /// immediately (the simulated bus has no queuing delay).
    pub fn icr_write(&self, raw: u64) -> HwResult<()> {
        self.icr_writes.fetch_add(1, Ordering::Relaxed);
        let cmd = IcrCommand::decode(raw);
        self.interconnect
            .send(self.id, cmd.resolve_dest(self.id), cmd.delivery())
    }

    /// Number of ICR writes performed by this core.
    pub fn icr_write_count(&self) -> u64 {
        self.icr_writes.load(Ordering::Relaxed)
    }

    /// Arm the timer to fire `period_ns` from now; `periodic` rearms
    /// automatically on expiry. A `period_ns` of 0 disarms.
    pub fn arm_timer(&self, period_ns: u64, periodic: bool, vector: u8) {
        self.timer_vector.store(vector as u64, Ordering::Relaxed);
        if period_ns == 0 {
            self.timer_deadline.store(0, Ordering::Release);
            self.timer_period.store(0, Ordering::Relaxed);
            return;
        }
        let cycles = self.clock.ns_to_cycles(period_ns);
        self.timer_period
            .store(if periodic { cycles } else { 0 }, Ordering::Relaxed);
        self.timer_deadline
            .store(self.clock.rdtsc() + cycles, Ordering::Release);
    }

    /// Current timer mode.
    pub fn timer_mode(&self) -> TimerMode {
        if self.timer_deadline.load(Ordering::Acquire) == 0 {
            TimerMode::Off
        } else if self.timer_period.load(Ordering::Relaxed) == 0 {
            TimerMode::OneShot
        } else {
            TimerMode::Periodic
        }
    }

    /// Poll the timer: if the deadline passed, deliver the timer vector to
    /// this core's own mailbox (and rearm if periodic). Returns true if it
    /// fired. Called from the core's safe points.
    pub fn poll_timer(&self) -> bool {
        let deadline = self.timer_deadline.load(Ordering::Acquire);
        if deadline == 0 {
            return false;
        }
        let now = self.clock.rdtsc();
        if now < deadline {
            return false;
        }
        let period = self.timer_period.load(Ordering::Relaxed);
        // Skip missed periods rather than delivering a burst — models a
        // discarded-overrun LAPIC programmed by a tickless LWK.
        let next = match (now - deadline).checked_div(period) {
            Some(missed) => deadline + (missed + 1) * period,
            None => 0, // one-shot: disarm
        };
        if self
            .timer_deadline
            .compare_exchange(deadline, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let vector = self.timer_vector.load(Ordering::Relaxed) as u8;
            let _ = self.interconnect.send(
                self.id,
                IpiDest::Core(self.id),
                DeliveryMode::Fixed(vector),
            );
            true
        } else {
            false
        }
    }

    /// The node clock this APIC's timer runs off.
    pub fn clock(&self) -> &Arc<TscClock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cores: usize) -> (Arc<Interconnect>, Arc<TscClock>, Vec<LocalApic>) {
        let ic = Arc::new(Interconnect::new(cores));
        let clock = Arc::new(TscClock::new(1_000_000_000));
        let apics = (0..cores)
            .map(|i| LocalApic::new(i, Arc::clone(&ic), Arc::clone(&clock)))
            .collect();
        (ic, clock, apics)
    }

    #[test]
    fn icr_encode_decode_roundtrip() {
        let cmd = IcrCommand {
            vector: 0x42,
            mode: ICR_MODE_FIXED,
            dest: 3,
            shorthand: ICR_SH_NONE,
        };
        assert_eq!(IcrCommand::decode(cmd.encode()), cmd);
        let nmi = IcrCommand {
            vector: 0,
            mode: ICR_MODE_NMI,
            dest: 7,
            shorthand: ICR_SH_ALL_EXC,
        };
        assert_eq!(IcrCommand::decode(nmi.encode()), nmi);
    }

    #[test]
    fn icr_write_delivers_fixed() {
        let (ic, _, apics) = setup(4);
        let cmd = IcrCommand {
            vector: 0x90,
            mode: ICR_MODE_FIXED,
            dest: 2,
            shorthand: ICR_SH_NONE,
        };
        apics[0].icr_write(cmd.encode()).unwrap();
        assert!(ic.mailbox(2).unwrap().irr.test(0x90));
        assert_eq!(apics[0].icr_write_count(), 1);
    }

    #[test]
    fn icr_write_delivers_nmi() {
        let (ic, _, apics) = setup(2);
        let cmd = IcrCommand {
            vector: 0,
            mode: ICR_MODE_NMI,
            dest: 1,
            shorthand: ICR_SH_NONE,
        };
        apics[0].icr_write(cmd.encode()).unwrap();
        assert!(ic.mailbox(1).unwrap().nmi_pending());
    }

    #[test]
    fn shorthand_self() {
        let (ic, _, apics) = setup(2);
        let cmd = IcrCommand {
            vector: 0x31,
            mode: ICR_MODE_FIXED,
            dest: 99,
            shorthand: ICR_SH_SELF,
        };
        apics[1].icr_write(cmd.encode()).unwrap();
        assert!(ic.mailbox(1).unwrap().irr.test(0x31));
        assert!(!ic.mailbox(0).unwrap().irr.test(0x31));
    }

    #[test]
    fn timer_oneshot_fires_once() {
        let (ic, _, apics) = setup(1);
        apics[0].arm_timer(1, false, 0xec); // 1 ns — already due
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(apics[0].poll_timer());
        assert!(ic.mailbox(0).unwrap().irr.test(0xec));
        assert_eq!(apics[0].timer_mode(), TimerMode::Off);
        assert!(!apics[0].poll_timer());
    }

    #[test]
    fn timer_periodic_rearms() {
        let (_, _, apics) = setup(1);
        apics[0].arm_timer(100_000, true, 0xec); // 100 µs period
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(apics[0].poll_timer());
        assert_eq!(apics[0].timer_mode(), TimerMode::Periodic);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(apics[0].poll_timer(), "periodic timer should fire again");
    }

    #[test]
    fn timer_disarm() {
        let (_, _, apics) = setup(1);
        apics[0].arm_timer(100, true, 0xec);
        apics[0].arm_timer(0, false, 0xec);
        assert_eq!(apics[0].timer_mode(), TimerMode::Off);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(!apics[0].poll_timer());
    }

    #[test]
    fn timer_not_due_does_not_fire() {
        let (_, _, apics) = setup(1);
        apics[0].arm_timer(10_000_000_000, false, 0xec); // 10 s away
        assert!(!apics[0].poll_timer());
    }
}
