//! Legacy I/O port space and the VMX I/O intercept bitmap.
//!
//! I/O operations are the fourth resource class Covirt can protect. The
//! model keeps a node-wide port space (a few well-known ports stand in for
//! real devices) and the VMX-style 64-Kbit intercept bitmap.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Serial port COM1 data register — a port a co-kernel legitimately pokes
/// for early console output.
pub const PORT_COM1: u16 = 0x3f8;
/// The keyboard controller reset line — a port that must never be reached
/// from an enclave (writing 0xFE there reboots the node).
pub const PORT_KBD_RESET: u16 = 0x64;
/// PCI configuration address port.
pub const PORT_PCI_CONFIG_ADDR: u16 = 0xcf8;
/// PCI configuration data port.
pub const PORT_PCI_CONFIG_DATA: u16 = 0xcfc;

/// Node-wide port space (device side).
#[derive(Default)]
pub struct IoPortSpace {
    values: RwLock<HashMap<u16, u32>>,
    /// Count of writes per port — lets tests assert a dangerous write never
    /// reached the "device".
    writes: RwLock<HashMap<u16, u64>>,
}

impl IoPortSpace {
    /// Create an empty port space.
    pub fn new() -> Self {
        Self::default()
    }

    /// IN instruction (device side).
    pub fn read(&self, port: u16) -> u32 {
        *self.values.read().get(&port).unwrap_or(&0)
    }

    /// OUT instruction (device side).
    pub fn write(&self, port: u16, value: u32) {
        self.values.write().insert(port, value);
        *self.writes.write().entry(port).or_insert(0) += 1;
    }

    /// How many writes have reached `port`.
    pub fn write_count(&self, port: u16) -> u64 {
        *self.writes.read().get(&port).unwrap_or(&0)
    }
}

const IO_WORDS: usize = 65536 / 64;

/// VMX-style I/O bitmap: one bit per port; set ⇒ the access VM-exits.
pub struct IoBitmap {
    bits: Box<[u64; IO_WORDS]>,
}

impl Default for IoBitmap {
    fn default() -> Self {
        Self::intercept_none()
    }
}

impl IoBitmap {
    /// Intercept no ports.
    pub fn intercept_none() -> Self {
        IoBitmap {
            bits: Box::new([0; IO_WORDS]),
        }
    }

    /// Intercept every port.
    pub fn intercept_all() -> Self {
        IoBitmap {
            bits: Box::new([u64::MAX; IO_WORDS]),
        }
    }

    /// Set or clear the intercept for one port.
    pub fn set(&mut self, port: u16, intercept: bool) {
        let w = (port / 64) as usize;
        let m = 1u64 << (port % 64);
        if intercept {
            self.bits[w] |= m;
        } else {
            self.bits[w] &= !m;
        }
    }

    /// Set or clear the intercept for an inclusive port range.
    pub fn set_range(&mut self, first: u16, last: u16, intercept: bool) {
        for p in first..=last {
            self.set(p, intercept);
        }
    }

    /// Does an access to `port` exit?
    pub fn exits(&self, port: u16) -> bool {
        self.bits[(port / 64) as usize] & (1u64 << (port % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_rw_and_counts() {
        let io = IoPortSpace::new();
        assert_eq!(io.read(PORT_COM1), 0);
        io.write(PORT_COM1, b'x' as u32);
        assert_eq!(io.read(PORT_COM1), b'x' as u32);
        assert_eq!(io.write_count(PORT_COM1), 1);
        assert_eq!(io.write_count(PORT_KBD_RESET), 0);
    }

    #[test]
    fn bitmap_default_passes() {
        let b = IoBitmap::intercept_none();
        assert!(!b.exits(PORT_COM1));
        assert!(!b.exits(0));
        assert!(!b.exits(u16::MAX));
    }

    #[test]
    fn bitmap_selective() {
        let mut b = IoBitmap::intercept_none();
        b.set(PORT_KBD_RESET, true);
        assert!(b.exits(PORT_KBD_RESET));
        assert!(!b.exits(PORT_COM1));
        b.set(PORT_KBD_RESET, false);
        assert!(!b.exits(PORT_KBD_RESET));
    }

    #[test]
    fn bitmap_range() {
        let mut b = IoBitmap::intercept_none();
        b.set_range(PORT_PCI_CONFIG_ADDR, PORT_PCI_CONFIG_DATA + 3, true);
        assert!(b.exits(PORT_PCI_CONFIG_ADDR));
        assert!(b.exits(PORT_PCI_CONFIG_DATA));
        assert!(b.exits(PORT_PCI_CONFIG_DATA + 3));
        assert!(!b.exits(PORT_PCI_CONFIG_DATA + 4));
    }

    #[test]
    fn bitmap_all() {
        let b = IoBitmap::intercept_all();
        assert!(b.exits(0));
        assert!(b.exits(12345));
    }
}
