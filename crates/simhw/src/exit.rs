//! VM-exit reasons and exit information.
//!
//! The subset modelled is exactly the set Covirt's hypervisor must handle
//! (Section IV-B of the paper): externally generated interrupts and NMIs,
//! the two always-exiting instructions (`cpuid`, `xsetbv`), MSR and I/O
//! accesses selected by the bitmaps, EPT violations, APIC (ICR) writes
//! under APIC virtualization, HLT, and abort-class exceptions such as
//! double/triple faults.

use crate::ept::EptViolationInfo;

/// Why the guest exited to the hypervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// A hardware interrupt arrived while external-interrupt exiting is on.
    ExternalInterrupt {
        /// The pending vector.
        vector: u8,
    },
    /// A non-maskable interrupt arrived (always exits under VMX).
    Nmi,
    /// The guest executed CPUID.
    Cpuid {
        /// Requested leaf (EAX).
        leaf: u32,
    },
    /// The guest executed XSETBV.
    Xsetbv {
        /// Requested XCR0 value.
        xcr0: u64,
    },
    /// RDMSR of an intercepted MSR.
    MsrRead {
        /// MSR index.
        index: u32,
    },
    /// WRMSR of an intercepted MSR.
    MsrWrite {
        /// MSR index.
        index: u32,
        /// Value being written.
        value: u64,
    },
    /// IN from an intercepted port.
    IoRead {
        /// Port number.
        port: u16,
    },
    /// OUT to an intercepted port.
    IoWrite {
        /// Port number.
        port: u16,
        /// Value being written.
        value: u32,
    },
    /// The nested walk faulted — the enclave touched memory outside its
    /// assignment (or with disallowed permissions).
    EptViolation(EptViolationInfo),
    /// A write to the virtualized APIC ICR (IPI transmission attempt).
    IcrWrite {
        /// Raw x2APIC ICR value.
        value: u64,
    },
    /// The guest executed HLT while HLT exiting is enabled.
    Hlt,
    /// Abort-class exception: double fault in the guest.
    DoubleFault,
    /// Abort-class: triple fault (would reset a bare-metal machine).
    TripleFault,
}

impl ExitReason {
    /// True for abort-class exits that must terminate the enclave.
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            ExitReason::EptViolation(_) | ExitReason::DoubleFault | ExitReason::TripleFault
        )
    }

    /// Short stable name for stats tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExitReason::ExternalInterrupt { .. } => "ext-intr",
            ExitReason::Nmi => "nmi",
            ExitReason::Cpuid { .. } => "cpuid",
            ExitReason::Xsetbv { .. } => "xsetbv",
            ExitReason::MsrRead { .. } => "rdmsr",
            ExitReason::MsrWrite { .. } => "wrmsr",
            ExitReason::IoRead { .. } => "io-in",
            ExitReason::IoWrite { .. } => "io-out",
            ExitReason::EptViolation(_) => "ept-violation",
            ExitReason::IcrWrite { .. } => "icr-write",
            ExitReason::Hlt => "hlt",
            ExitReason::DoubleFault => "double-fault",
            ExitReason::TripleFault => "triple-fault",
        }
    }
}

/// Exit record stored in the VMCS exit-information fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExitInfo {
    /// The exit reason.
    pub reason: ExitReason,
    /// TSC at exit time.
    pub tsc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GuestPhysAddr;
    use crate::paging::Access;

    #[test]
    fn abort_classification() {
        assert!(ExitReason::EptViolation(EptViolationInfo {
            gpa: GuestPhysAddr::new(0),
            access: Access::Write
        })
        .is_abort());
        assert!(ExitReason::DoubleFault.is_abort());
        assert!(ExitReason::TripleFault.is_abort());
        assert!(!ExitReason::Cpuid { leaf: 0 }.is_abort());
        assert!(!ExitReason::IcrWrite { value: 0 }.is_abort());
        assert!(!ExitReason::Hlt.is_abort());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ExitReason::Nmi.name(), "nmi");
        assert_eq!(ExitReason::MsrWrite { index: 1, value: 2 }.name(), "wrmsr");
        assert_eq!(ExitReason::Hlt.name(), "hlt");
    }
}
