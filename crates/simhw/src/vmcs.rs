//! The Virtual Machine Control Structure.
//!
//! A [`Vmcs`] bundles the guest register state the hypervisor launches
//! from, the execution controls that decide what exits, and the exit
//! information fields. In Covirt's design the *controller module* writes
//! the whole structure before the enclave CPU boots, and later edits it in
//! place (it "retains access to the data structures of the co-kernel's
//! virtualization context"); the hypervisor merely loads and launches it.
//! The structure is therefore shared: `Arc<RwLock<Vmcs>>` plays the role of
//! the in-memory VMCS region.

use crate::addr::HostPhysAddr;
use crate::exit::ExitInfo;
use crate::ioport::IoBitmap;
use crate::msr::MsrBitmap;
use crate::posted::PostedIntDescriptor;
use covirt_trace::{pack_str, EventKind, Tracer};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Guest register state at launch (the subset the Pisces trampoline
/// establishes: 64-bit long mode, identity page tables, entry point and
/// boot-parameter pointer in RDI).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestState {
    /// Entry instruction pointer (the co-kernel's start address).
    pub rip: u64,
    /// Initial stack pointer.
    pub rsp: u64,
    /// Root of the guest's identity page tables (CR3).
    pub cr3: u64,
    /// Boot-parameter pointer handed to the kernel in RDI.
    pub rdi: u64,
    /// EFER at entry (LME|LMA — launched directly into long mode).
    pub efer: u64,
    /// XCR0 (extended-state enable), set via xsetbv.
    pub xcr0: u64,
}

impl Default for GuestState {
    fn default() -> Self {
        GuestState {
            rip: 0,
            rsp: 0,
            cr3: 0,
            rdi: 0,
            efer: 0x500,
            xcr0: 1,
        }
    }
}

/// How the local APIC is virtualized for this guest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ApicVirtMode {
    /// No APIC virtualization: the guest's APIC accesses go straight to
    /// hardware (Covirt disabled / IPI protection off).
    #[default]
    Passthrough,
    /// Full virtualization: every ICR write traps, and *all incoming
    /// interrupts force VM exits* (the VMX requirement the paper notes).
    TrapAll,
    /// Posted-interrupt mode: ICR writes still trap for whitelisting, but
    /// incoming interrupts are posted without exits.
    Posted,
}

/// Execution controls — which events leave the guest.
#[derive(Default)]
pub struct VmcsControls {
    /// Extended page table pointer; `None` disables nested paging.
    pub eptp: Option<HostPhysAddr>,
    /// Exit on external interrupts (required by TrapAll APIC mode).
    pub ext_int_exiting: bool,
    /// Exit on HLT.
    pub hlt_exiting: bool,
    /// APIC virtualization mode.
    pub apic_virt: ApicVirtMode,
    /// MSR intercept bitmap; `None` intercepts every MSR access.
    pub msr_bitmap: Option<Arc<RwLock<MsrBitmap>>>,
    /// I/O intercept bitmap; `None` intercepts every port access.
    pub io_bitmap: Option<Arc<RwLock<IoBitmap>>>,
    /// Posted-interrupt descriptor (required for `ApicVirtMode::Posted`).
    pub posted_desc: Option<Arc<PostedIntDescriptor>>,
}

/// The virtual-machine control structure for one enclave vCPU.
#[derive(Default)]
pub struct Vmcs {
    /// Guest register state.
    pub guest: GuestState,
    /// Execution controls.
    pub controls: VmcsControls,
    /// Whether VMLAUNCH has been executed.
    pub launched: bool,
    /// Exit-information fields: the most recent exit.
    pub last_exit: Option<ExitInfo>,
    /// Cumulative exit counts by reason name (instrumentation register —
    /// stands in for the perf counters the paper reads).
    pub exit_counts: HashMap<&'static str, u64>,
    /// Flight-recorder handle; exits emit `ExitEnter` events when set.
    pub tracer: Option<Tracer>,
}

impl Vmcs {
    /// Fresh, unlaunched VMCS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an exit in the exit-information fields.
    pub fn record_exit(&mut self, info: ExitInfo) {
        *self.exit_counts.entry(info.reason.name()).or_insert(0) += 1;
        if let Some(t) = &self.tracer {
            if t.enabled() {
                let (a, b) = pack_str(info.reason.name());
                t.emit_at(EventKind::ExitEnter, info.tsc, a, b);
            }
        }
        self.last_exit = Some(info);
    }

    /// Total exits so far.
    pub fn total_exits(&self) -> u64 {
        self.exit_counts.values().sum()
    }
}

/// Shared handle to a VMCS, as both controller and hypervisor hold one.
pub type VmcsHandle = Arc<RwLock<Vmcs>>;

/// Allocate a fresh shared VMCS.
pub fn new_vmcs() -> VmcsHandle {
    Arc::new(RwLock::new(Vmcs::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exit::ExitReason;

    #[test]
    fn defaults() {
        let v = Vmcs::new();
        assert!(!v.launched);
        assert!(v.last_exit.is_none());
        assert_eq!(v.guest.efer, 0x500);
        assert_eq!(v.controls.apic_virt, ApicVirtMode::Passthrough);
        assert!(v.controls.eptp.is_none());
    }

    #[test]
    fn record_and_count_exits() {
        let mut v = Vmcs::new();
        v.record_exit(ExitInfo {
            reason: ExitReason::Cpuid { leaf: 0 },
            tsc: 10,
        });
        v.record_exit(ExitInfo {
            reason: ExitReason::Cpuid { leaf: 1 },
            tsc: 20,
        });
        v.record_exit(ExitInfo {
            reason: ExitReason::Hlt,
            tsc: 30,
        });
        assert_eq!(v.exit_counts["cpuid"], 2);
        assert_eq!(v.exit_counts["hlt"], 1);
        assert_eq!(v.total_exits(), 3);
        assert_eq!(v.last_exit.unwrap().tsc, 30);
    }
}
