//! Node topology: sockets, cores and NUMA zones.
//!
//! The default topology mirrors the paper's testbed: two Xeon E5-2603 v4
//! packages (6 cores each, no SMT) at 1.70 GHz with 64 GiB of DDR4 split
//! across two NUMA zones. The evaluation's hardware-layout axis
//! (1 core / 1 zone … 8 cores / 2 zones, Figures 6 and 7) is expressed with
//! [`HwLayout`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical CPU core, node-global (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifier of a NUMA memory zone (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ZoneId(pub usize);

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "numa{}", self.0)
    }
}

/// Static description of a node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// NUMA zones (one per socket on the paper's testbed).
    pub zones: usize,
    /// Bytes of physical memory per zone.
    pub mem_per_zone: u64,
    /// Nominal TSC frequency in Hz.
    pub tsc_hz: u64,
}

impl Topology {
    /// The paper's evaluation machine: 2 × Xeon E5-2603 v4 (6C, 1.70 GHz),
    /// 64 GiB DDR4, 2 NUMA zones.
    pub fn paper_testbed() -> Self {
        Topology {
            sockets: 2,
            cores_per_socket: 6,
            zones: 2,
            mem_per_zone: 32 * 1024 * 1024 * 1024,
            tsc_hz: 1_700_000_000,
        }
    }

    /// A small topology for fast unit tests.
    pub fn small() -> Self {
        Topology {
            sockets: 1,
            cores_per_socket: 4,
            zones: 1,
            mem_per_zone: 256 * 1024 * 1024,
            tsc_hz: 1_000_000_000,
        }
    }

    /// Total number of cores on the node.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The NUMA zone local to a core (cores are striped socket-major, and
    /// zones map 1:1 onto sockets when counts match, else modulo).
    pub fn zone_of_core(&self, core: CoreId) -> ZoneId {
        let socket = core.0 / self.cores_per_socket;
        ZoneId(socket % self.zones)
    }

    /// All cores belonging to a socket.
    pub fn cores_of_socket(&self, socket: usize) -> Vec<CoreId> {
        let base = socket * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(CoreId).collect()
    }
}

/// One of the paper's enclave hardware layouts (Figures 6–7): a core count
/// and the number of NUMA zones those cores (and the enclave's memory) are
/// spread across.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwLayout {
    /// Cores assigned to the enclave.
    pub cores: usize,
    /// NUMA zones the cores and memory are split across.
    pub zones: usize,
}

impl HwLayout {
    /// The four layouts evaluated in the paper, in presentation order:
    /// 1 core / 1 zone, 4 cores / 2 zones, 4 cores / 1 zone,
    /// 8 cores / 2 zones.
    pub fn paper_layouts() -> [HwLayout; 4] {
        [
            HwLayout { cores: 1, zones: 1 },
            HwLayout { cores: 4, zones: 2 },
            HwLayout { cores: 4, zones: 1 },
            HwLayout { cores: 8, zones: 2 },
        ]
    }

    /// Pick the concrete core ids for this layout on `topo`, filling sockets
    /// round-robin across the requested zones.
    ///
    /// Cores are taken from the *end* of each socket so that core 0 (which
    /// hosts the management OS in a Pisces deployment) stays with the host.
    pub fn pick_cores(&self, topo: &Topology) -> Vec<CoreId> {
        assert!(
            self.zones >= 1 && self.zones <= topo.zones,
            "layout zones exceed node zones"
        );
        assert!(
            self.cores <= self.zones * topo.cores_per_socket,
            "layout cores exceed capacity of the selected zones"
        );
        let mut picked = Vec::with_capacity(self.cores);
        // Take cores from each selected socket, highest-numbered first.
        let mut per_socket_taken = vec![0usize; self.zones];
        let mut z = 0usize;
        while picked.len() < self.cores {
            let taken = per_socket_taken[z];
            if taken < topo.cores_per_socket {
                let core = CoreId((z + 1) * topo.cores_per_socket - 1 - taken);
                picked.push(core);
                per_socket_taken[z] += 1;
            }
            z = (z + 1) % self.zones;
        }
        picked.sort();
        picked
    }

    /// Zone ids this layout uses (always the first `zones` zones).
    pub fn pick_zones(&self) -> Vec<ZoneId> {
        (0..self.zones).map(ZoneId).collect()
    }
}

impl fmt::Display for HwLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}z", self.cores, self.zones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_counts() {
        let t = Topology::paper_testbed();
        assert_eq!(t.total_cores(), 12);
        assert_eq!(t.zone_of_core(CoreId(0)), ZoneId(0));
        assert_eq!(t.zone_of_core(CoreId(5)), ZoneId(0));
        assert_eq!(t.zone_of_core(CoreId(6)), ZoneId(1));
        assert_eq!(t.zone_of_core(CoreId(11)), ZoneId(1));
    }

    #[test]
    fn cores_of_socket() {
        let t = Topology::paper_testbed();
        assert_eq!(t.cores_of_socket(0), (0..6).map(CoreId).collect::<Vec<_>>());
        assert_eq!(
            t.cores_of_socket(1),
            (6..12).map(CoreId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn layout_pick_single_zone() {
        let t = Topology::paper_testbed();
        let l = HwLayout { cores: 4, zones: 1 };
        let cores = l.pick_cores(&t);
        assert_eq!(cores.len(), 4);
        // All from socket 0, not including core 0.
        assert!(cores.iter().all(|c| c.0 >= 2 && c.0 < 6));
    }

    #[test]
    fn layout_pick_split_zones() {
        let t = Topology::paper_testbed();
        let l = HwLayout { cores: 8, zones: 2 };
        let cores = l.pick_cores(&t);
        assert_eq!(cores.len(), 8);
        let in_s0 = cores.iter().filter(|c| c.0 < 6).count();
        let in_s1 = cores.iter().filter(|c| c.0 >= 6).count();
        assert_eq!(in_s0, 4);
        assert_eq!(in_s1, 4);
    }

    #[test]
    fn layout_pick_unique() {
        let t = Topology::paper_testbed();
        for l in HwLayout::paper_layouts() {
            let mut cores = l.pick_cores(&t);
            let before = cores.len();
            cores.dedup();
            assert_eq!(cores.len(), before, "layout {l} picked duplicate cores");
        }
    }

    #[test]
    #[should_panic(expected = "layout cores exceed capacity")]
    fn layout_overflow_panics() {
        let t = Topology::small();
        let l = HwLayout { cores: 9, zones: 1 };
        l.pick_cores(&t);
    }
}
