//! Time-stamp counter model.
//!
//! The paper samples the hardware TSC around XEMEM attach operations
//! (Figure 4) and inside the Selfish-Detour loop (Figure 3). The simulator
//! offers the same instrument: a monotonic cycle counter derived from the
//! host's monotonic clock, scaled to the node's nominal TSC frequency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A node-wide TSC: all cores read the same invariant counter, as on any
/// post-Nehalem Intel part.
pub struct TscClock {
    start: Instant,
    hz: u64,
    /// Fixed offset so a fresh enclave does not start at cycle 0.
    offset: AtomicU64,
}

impl TscClock {
    /// Create a clock ticking at `hz` cycles per second.
    pub fn new(hz: u64) -> Self {
        TscClock {
            start: Instant::now(),
            hz,
            offset: AtomicU64::new(0),
        }
    }

    /// RDTSC: cycles since the clock was created (plus any offset).
    #[inline]
    pub fn rdtsc(&self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as u64;
        // 128-bit intermediate avoids overflow for multi-hour runs.
        let cycles = (ns as u128 * self.hz as u128 / 1_000_000_000) as u64;
        cycles + self.offset.load(Ordering::Relaxed)
    }

    /// Nominal frequency in Hz.
    #[inline]
    pub fn hz(&self) -> u64 {
        self.hz
    }

    /// Convert a cycle delta to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as u128 * 1_000_000_000 / self.hz as u128) as u64
    }

    /// Convert nanoseconds to cycles.
    #[inline]
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as u128 * self.hz as u128 / 1_000_000_000) as u64
    }

    /// WRMSR IA32_TSC analogue — used by tests to fast-forward.
    pub fn add_offset(&self, cycles: u64) {
        self.offset.fetch_add(cycles, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let c = TscClock::new(1_700_000_000);
        let a = c.rdtsc();
        let b = c.rdtsc();
        assert!(b >= a);
    }

    #[test]
    fn conversion_roundtrip() {
        let c = TscClock::new(1_700_000_000);
        let ns = 1_000_000;
        let cycles = c.ns_to_cycles(ns);
        assert_eq!(cycles, 1_700_000);
        let back = c.cycles_to_ns(cycles);
        assert!((back as i64 - ns as i64).abs() <= 1);
    }

    #[test]
    fn offset_applies() {
        let c = TscClock::new(1_000_000_000);
        let a = c.rdtsc();
        c.add_offset(1_000_000_000);
        let b = c.rdtsc();
        assert!(b >= a + 1_000_000_000);
    }

    #[test]
    fn ticks_forward_in_real_time() {
        let c = TscClock::new(1_000_000_000);
        let a = c.rdtsc();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.rdtsc();
        assert!(
            b - a >= 1_000_000,
            "expected at least 1ms of cycles, got {}",
            b - a
        );
    }
}
