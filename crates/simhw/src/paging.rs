//! 4-level radix page tables stored *inside* simulated physical memory.
//!
//! Both the co-kernel's own x86-64 page tables and the hypervisor's EPT
//! (see [`crate::ept`]) are instances of one generic radix engine,
//! parameterized by an [`EntryFormat`]. Tables live in real [`crate::backing`]
//! memory reached through [`crate::memory::PhysMemory`], so every step of a
//! walk performs an actual dependent load — which is what makes translation
//! overheads *emerge* in the evaluation instead of being constants.
//!
//! Level numbering follows hardware: level 4 is the root (PML4 / EPT PML4),
//! level 1 is the final table (PT). Leaves may appear at level 3 (1 GiB),
//! level 2 (2 MiB) or level 1 (4 KiB).

use crate::addr::{HostPhysAddr, PhysRange, PAGE_SIZE_4K};
use crate::error::{HwError, HwResult};
use crate::memory::PhysMemory;
use parking_lot::Mutex;
use std::sync::Arc;

/// Access kind for permission checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Permissions attached to a leaf mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read+write+execute — what Covirt installs for every owned region
    /// ("All EPT entries are mapped with full access permissions").
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// Read-only mapping.
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// Read+write, no execute.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };

    /// Whether these permissions allow `access`.
    #[inline]
    pub fn allows(&self, access: Access) -> bool {
        match access {
            Access::Read => self.r,
            Access::Write => self.w,
            Access::Exec => self.x,
        }
    }
}

/// Encoding of one table-entry format (x86 PTE vs EPT entry).
pub trait EntryFormat {
    /// True if the entry is present/valid at all.
    fn present(entry: u64) -> bool;
    /// True if the entry is a leaf at `level` (large/giant page or level-1 PTE).
    fn leaf(entry: u64, level: u8) -> bool;
    /// Physical address contained in the entry.
    fn frame(entry: u64) -> HostPhysAddr;
    /// Build a non-leaf entry pointing at a child table.
    fn table_entry(child: HostPhysAddr) -> u64;
    /// Build a leaf entry mapping `pa` at `level` with `perms`.
    fn leaf_entry(pa: HostPhysAddr, level: u8, perms: Perms) -> u64;
    /// Whether a leaf entry allows `access`.
    fn entry_allows(entry: u64, access: Access) -> bool;
    /// Permissions recorded in a leaf entry.
    fn entry_perms(entry: u64) -> Perms;
}

/// x86-64 long-mode page-table entries.
pub struct X86Format;

/// x86 PTE bits.
pub mod x86_bits {
    /// Present.
    pub const P: u64 = 1 << 0;
    /// Writable.
    pub const RW: u64 = 1 << 1;
    /// User-accessible.
    pub const US: u64 = 1 << 2;
    /// Page size (large page) — valid at levels 2 and 3.
    pub const PS: u64 = 1 << 7;
    /// No-execute.
    pub const NX: u64 = 1 << 63;
    /// Address mask (bits 12..=51).
    pub const ADDR: u64 = 0x000f_ffff_ffff_f000;
}

impl EntryFormat for X86Format {
    #[inline]
    fn present(entry: u64) -> bool {
        entry & x86_bits::P != 0
    }
    #[inline]
    fn leaf(entry: u64, level: u8) -> bool {
        level == 1 || entry & x86_bits::PS != 0
    }
    #[inline]
    fn frame(entry: u64) -> HostPhysAddr {
        HostPhysAddr::new(entry & x86_bits::ADDR)
    }
    #[inline]
    fn table_entry(child: HostPhysAddr) -> u64 {
        (child.raw() & x86_bits::ADDR) | x86_bits::P | x86_bits::RW | x86_bits::US
    }
    #[inline]
    fn leaf_entry(pa: HostPhysAddr, level: u8, perms: Perms) -> u64 {
        let mut e = (pa.raw() & x86_bits::ADDR) | x86_bits::P | x86_bits::US;
        if perms.w {
            e |= x86_bits::RW;
        }
        if !perms.x {
            e |= x86_bits::NX;
        }
        if level > 1 {
            e |= x86_bits::PS;
        }
        e
    }
    #[inline]
    fn entry_allows(entry: u64, access: Access) -> bool {
        match access {
            Access::Read => true, // present implies readable on x86
            Access::Write => entry & x86_bits::RW != 0,
            Access::Exec => entry & x86_bits::NX == 0,
        }
    }
    #[inline]
    fn entry_perms(entry: u64) -> Perms {
        Perms {
            r: true,
            w: entry & x86_bits::RW != 0,
            x: entry & x86_bits::NX == 0,
        }
    }
}

/// Nested-translation hook for walks. Before the engine loads a table
/// entry it asks the loader to translate the entry's physical address; the
/// direct implementation is the identity, while Covirt's nested loader runs
/// a real EPT walk per entry — so nested walk costs compound exactly as
/// they do on hardware (up to ~24 loads for a 4-level guest walk).
pub trait TableLoad {
    /// Translate the address of a table entry. Returns the (host-)physical
    /// address to read and the number of additional table loads the
    /// translation itself performed.
    fn translate_entry_addr(&self, pa: HostPhysAddr) -> HwResult<(HostPhysAddr, u32)>;

    /// Load a table-entry word that missed the frame-pool fast path. The
    /// default goes straight to physical memory; core-local loaders route
    /// it through a [`crate::memory::RegionCache`] instead.
    #[inline]
    fn load_word(&self, mem: &PhysMemory, pa: HostPhysAddr) -> HwResult<u64> {
        mem.read_u64(pa)
    }
}

/// Plain physical loads (no nested translation).
pub struct DirectLoad<'a>(pub &'a PhysMemory);

impl TableLoad for DirectLoad<'_> {
    #[inline]
    fn translate_entry_addr(&self, pa: HostPhysAddr) -> HwResult<(HostPhysAddr, u32)> {
        Ok((pa, 0))
    }
}

/// [`DirectLoad`] with a per-core region cache: identity nested
/// translation, but entry loads that fall outside the table pool resolve
/// through the cache instead of searching the populate snapshot.
pub struct CachedLoad<'a> {
    /// The physical memory to resolve against.
    pub mem: &'a PhysMemory,
    /// The core-local region cache.
    pub cache: &'a crate::memory::RegionCache,
}

impl TableLoad for CachedLoad<'_> {
    #[inline]
    fn translate_entry_addr(&self, pa: HostPhysAddr) -> HwResult<(HostPhysAddr, u32)> {
        Ok((pa, 0))
    }

    #[inline]
    fn load_word(&self, mem: &PhysMemory, pa: HostPhysAddr) -> HwResult<u64> {
        let (b, off) = self.cache.resolve(mem, pa, 8)?;
        Ok(b.read_u64(off))
    }
}

/// Result of a successful walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Physical base of the containing page.
    pub page_base: HostPhysAddr,
    /// Page size in bytes (4 KiB / 2 MiB / 1 GiB).
    pub page_size: u64,
    /// Physical address of the requested byte.
    pub pa: HostPhysAddr,
    /// Leaf permissions.
    pub perms: Perms,
    /// Number of table loads the walk performed.
    pub loads: u32,
}

/// Page size covered by a leaf at `level`.
#[inline]
pub fn level_page_size(level: u8) -> u64 {
    match level {
        1 => PAGE_SIZE_4K,
        2 => crate::addr::PAGE_SIZE_2M,
        3 => crate::addr::PAGE_SIZE_1G,
        _ => panic!("no page size at level {level}"),
    }
}

/// 9-bit table index of `addr` at `level`.
#[inline]
pub fn level_index(addr: u64, level: u8) -> u64 {
    (addr >> (12 + 9 * (level as u64 - 1))) & 0x1ff
}

/// Bump allocator for table frames carved out of one backed region.
///
/// The pool resolves its region's backing once at construction, so table
/// entry loads during walks are a bounds check plus a word load — the
/// cached-page-table-entry cost regime of real hardware, on which the
/// evaluation's walk-cost ratios depend.
pub struct FramePool {
    mem: Arc<PhysMemory>,
    region: PhysRange,
    next: Mutex<u64>,
    backing: Arc<crate::backing::Backing>,
    backing_off: usize,
}

impl FramePool {
    /// Build a pool over `region`, which must already be populated.
    pub fn new(mem: Arc<PhysMemory>, region: PhysRange) -> Self {
        let (backing, backing_off) = mem
            .resolve(region.start, region.len)
            .expect("frame pool region must be populated");
        FramePool {
            mem,
            region,
            next: Mutex::new(0),
            backing,
            backing_off,
        }
    }

    /// Fast word load from a pool-resident table frame.
    #[inline]
    pub fn load(&self, pa: HostPhysAddr) -> Option<u64> {
        let off = pa.raw().wrapping_sub(self.region.start.raw());
        if off + 8 <= self.region.len {
            Some(self.backing.read_u64(self.backing_off + off as usize))
        } else {
            None
        }
    }

    /// Fast word store into a pool-resident table frame.
    #[inline]
    pub fn store(&self, pa: HostPhysAddr, value: u64) -> bool {
        let off = pa.raw().wrapping_sub(self.region.start.raw());
        if off + 8 <= self.region.len {
            self.backing
                .write_u64(self.backing_off + off as usize, value);
            true
        } else {
            false
        }
    }

    /// Allocate one zeroed 4 KiB table frame.
    pub fn alloc_frame(&self) -> HwResult<HostPhysAddr> {
        let mut next = self.next.lock();
        if *next + PAGE_SIZE_4K > self.region.len {
            return Err(HwError::OutOfMemory {
                zone: self.mem.zone_of(self.region.start).0,
                requested: PAGE_SIZE_4K,
            });
        }
        let frame_off = *next;
        let pa = self.region.start.add(frame_off);
        *next += PAGE_SIZE_4K;
        // Zero through the pool's own pinned backing: frame allocation is a
        // tight loop at boot, and the region was resolved once at
        // construction.
        self.backing
            .zero(self.backing_off + frame_off as usize, PAGE_SIZE_4K as usize);
        Ok(pa)
    }

    /// Bytes remaining in the pool.
    pub fn remaining(&self) -> u64 {
        self.region.len - *self.next.lock()
    }

    /// The physical memory the pool carves frames from.
    pub fn memory(&self) -> &Arc<PhysMemory> {
        &self.mem
    }
}

/// Generic 4-level radix table rooted at a physical frame.
pub struct RadixTable<F: EntryFormat> {
    mem: Arc<PhysMemory>,
    pool: Arc<FramePool>,
    root: HostPhysAddr,
    _fmt: std::marker::PhantomData<F>,
}

impl<F: EntryFormat> RadixTable<F> {
    /// Create an empty table, allocating the root frame from `pool`.
    pub fn new(pool: Arc<FramePool>) -> HwResult<Self> {
        let root = pool.alloc_frame()?;
        Ok(RadixTable {
            mem: Arc::clone(pool.memory()),
            pool,
            root,
            _fmt: std::marker::PhantomData,
        })
    }

    /// Physical address of the root table (CR3 / EPTP analogue).
    pub fn root(&self) -> HostPhysAddr {
        self.root
    }

    fn entry_addr(table: HostPhysAddr, idx: u64) -> HostPhysAddr {
        table.add(idx * 8)
    }

    #[inline]
    fn read_entry(&self, pa: HostPhysAddr) -> HwResult<u64> {
        match self.pool.load(pa) {
            Some(v) => Ok(v),
            None => self.mem.read_u64(pa),
        }
    }

    #[inline]
    fn write_entry(&self, pa: HostPhysAddr, value: u64) -> HwResult<()> {
        if self.pool.store(pa, value) {
            Ok(())
        } else {
            self.mem.write_u64(pa, value)
        }
    }

    /// Map `[va, va+len)` to `[pa, pa+len)` with `perms`, using the largest
    /// page size `<= max_level` that alignment and remaining length allow.
    /// `va`, `pa` and `len` must be 4 KiB aligned.
    pub fn map(
        &self,
        va: u64,
        pa: HostPhysAddr,
        len: u64,
        perms: Perms,
        max_level: u8,
    ) -> HwResult<()> {
        if !va.is_multiple_of(PAGE_SIZE_4K)
            || !pa.raw().is_multiple_of(PAGE_SIZE_4K)
            || !len.is_multiple_of(PAGE_SIZE_4K)
        {
            return Err(HwError::Invalid("map arguments must be 4 KiB aligned"));
        }
        if len == 0 {
            return Ok(());
        }
        let max_level = max_level.clamp(1, 3);
        let mut off = 0u64;
        while off < len {
            let cva = va + off;
            let cpa = pa.raw() + off;
            let remaining = len - off;
            let mut level = max_level;
            while level > 1 {
                let sz = level_page_size(level);
                if cva.is_multiple_of(sz) && cpa.is_multiple_of(sz) && remaining >= sz {
                    break;
                }
                level -= 1;
            }
            self.map_one(cva, HostPhysAddr::new(cpa), level, perms)?;
            off += level_page_size(level);
        }
        Ok(())
    }

    /// Install a single leaf at `level`.
    fn map_one(&self, va: u64, pa: HostPhysAddr, level: u8, perms: Perms) -> HwResult<()> {
        let mut table = self.root;
        let mut cur = 4u8;
        while cur > level {
            let eaddr = Self::entry_addr(table, level_index(va, cur));
            let e = self.read_entry(eaddr)?;
            let child = if F::present(e) {
                if F::leaf(e, cur) {
                    return Err(HwError::Invalid(
                        "mapping collides with an existing larger page",
                    ));
                }
                F::frame(e)
            } else {
                let child = self.pool.alloc_frame()?;
                self.write_entry(eaddr, F::table_entry(child))?;
                child
            };
            table = child;
            cur -= 1;
        }
        let eaddr = Self::entry_addr(table, level_index(va, level));
        self.write_entry(eaddr, F::leaf_entry(pa, level, perms))?;
        Ok(())
    }

    /// Remove the mapping of `[va, va+len)`. Large pages partially covered
    /// by the range are split first (allocating frames from the pool).
    /// Unmapped holes inside the range are permitted and skipped.
    pub fn unmap(&self, va: u64, len: u64) -> HwResult<()> {
        if !va.is_multiple_of(PAGE_SIZE_4K) || !len.is_multiple_of(PAGE_SIZE_4K) {
            return Err(HwError::Invalid("unmap arguments must be 4 KiB aligned"));
        }
        let mut off = 0u64;
        while off < len {
            let cva = va + off;
            match self.clear_one(cva, va, len)? {
                Some(step) => off += step,
                None => off += PAGE_SIZE_4K,
            }
        }
        Ok(())
    }

    /// Clear the leaf covering `va`, splitting large pages if the unmap
    /// range does not cover them fully. Returns the bytes cleared.
    fn clear_one(&self, va: u64, range_va: u64, range_len: u64) -> HwResult<Option<u64>> {
        let mut table = self.root;
        let mut level = 4u8;
        loop {
            let eaddr = Self::entry_addr(table, level_index(va, level));
            let e = self.read_entry(eaddr)?;
            if !F::present(e) {
                // Hole: skip to the end of this entry's span.
                let span = if level == 4 {
                    512 * level_page_size(3)
                } else {
                    level_page_size(level)
                };
                let skip = span - (va % span);
                return Ok(Some(skip.min(range_va + range_len - va)));
            }
            if level > 1 && !F::leaf(e, level) {
                table = F::frame(e);
                level -= 1;
                continue;
            }
            // Found the leaf.
            let page_size = level_page_size(level);
            let page_base = va - va % page_size;
            let covered = page_base >= range_va && page_base + page_size <= range_va + range_len;
            if covered || level == 1 {
                self.write_entry(eaddr, 0)?;
                return Ok(Some(page_size - (va - page_base)));
            }
            // Partially covered large page: split into the next level down.
            let child = self.pool.alloc_frame()?;
            let child_size = level_page_size(level - 1);
            let base_pa = F::frame(e).raw();
            let perms = F::entry_perms(e);
            for i in 0..512u64 {
                let ce = F::leaf_entry(
                    HostPhysAddr::new(base_pa + i * child_size),
                    level - 1,
                    perms,
                );
                self.write_entry(Self::entry_addr(child, i), ce)?;
            }
            self.write_entry(eaddr, F::table_entry(child))?;
            table = child;
            level -= 1;
        }
    }

    /// Walk the table for `va`. Each entry address is first translated
    /// through `loader` (identity natively, a nested EPT walk under
    /// Covirt), then the entry is loaded via the pool fast path.
    pub fn walk<L: TableLoad>(&self, va: u64, loader: &L) -> HwResult<Translation> {
        let mut table = self.root;
        let mut level = 4u8;
        let mut loads = 0u32;
        loop {
            let eaddr = Self::entry_addr(table, level_index(va, level));
            let (taddr, extra) = loader.translate_entry_addr(eaddr)?;
            // Pool fast path first; off-pool entries go through the loader,
            // which may hold a core-local region cache.
            let e = match self.pool.load(taddr) {
                Some(v) => v,
                None => loader.load_word(&self.mem, taddr)?,
            };
            loads += extra + 1;
            if !F::present(e) {
                return Err(HwError::PageNotPresent {
                    gva: crate::addr::GuestVirtAddr::new(va),
                    level,
                });
            }
            if level > 1 && !F::leaf(e, level) {
                table = F::frame(e);
                level -= 1;
                continue;
            }
            let page_size = level_page_size(level);
            let page_base = F::frame(e);
            return Ok(Translation {
                page_base,
                page_size,
                pa: page_base.add(va % page_size),
                perms: F::entry_perms(e),
                loads,
            });
        }
    }

    /// Count leaves per level: `(count_4k, count_2m, count_1g)`.
    pub fn leaf_counts(&self) -> HwResult<(u64, u64, u64)> {
        let mut counts = (0u64, 0u64, 0u64);
        self.count_rec(self.root, 4, &mut counts)?;
        Ok(counts)
    }

    fn count_rec(
        &self,
        table: HostPhysAddr,
        level: u8,
        counts: &mut (u64, u64, u64),
    ) -> HwResult<()> {
        for i in 0..512u64 {
            let e = self.read_entry(Self::entry_addr(table, i))?;
            if !F::present(e) {
                continue;
            }
            if F::leaf(e, level) {
                match level {
                    1 => counts.0 += 1,
                    2 => counts.1 += 1,
                    3 => counts.2 += 1,
                    _ => return Err(HwError::Invalid("leaf at level 4")),
                }
            } else if level > 1 {
                self.count_rec(F::frame(e), level - 1, counts)?;
            }
        }
        Ok(())
    }
}

/// Guest (co-kernel) page tables in x86-64 format.
pub type GuestPageTables = RadixTable<X86Format>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PAGE_SIZE_1G, PAGE_SIZE_2M};
    use crate::topology::ZoneId;

    fn setup() -> (Arc<PhysMemory>, Arc<FramePool>) {
        let mem = Arc::new(PhysMemory::new(&[256 * 1024 * 1024]));
        let pool_region = mem
            .alloc_backed(ZoneId(0), 8 * 1024 * 1024, PAGE_SIZE_4K)
            .unwrap();
        let pool = Arc::new(FramePool::new(Arc::clone(&mem), pool_region));
        (mem, pool)
    }

    #[test]
    fn identity_map_walk_4k() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let data = mem
            .alloc_backed(ZoneId(0), 16 * 4096, PAGE_SIZE_4K)
            .unwrap();
        pt.map(data.start.raw(), data.start, data.len, Perms::RWX, 1)
            .unwrap();
        let t = pt.walk(data.start.raw() + 5000, &DirectLoad(&mem)).unwrap();
        assert_eq!(t.page_size, PAGE_SIZE_4K);
        assert_eq!(t.pa.raw(), data.start.raw() + 5000);
        assert_eq!(t.loads, 4);
    }

    #[test]
    fn large_pages_chosen_when_aligned() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let region = mem
            .alloc(ZoneId(0), 4 * PAGE_SIZE_2M, PAGE_SIZE_2M)
            .unwrap();
        pt.map(region.start.raw(), region.start, region.len, Perms::RWX, 3)
            .unwrap();
        let (c4k, c2m, c1g) = pt.leaf_counts().unwrap();
        assert_eq!((c4k, c2m, c1g), (0, 4, 0));
        let t = pt
            .walk(region.start.raw() + PAGE_SIZE_2M + 123, &DirectLoad(&mem))
            .unwrap();
        assert_eq!(t.page_size, PAGE_SIZE_2M);
        assert_eq!(t.loads, 3);
    }

    #[test]
    fn unaligned_tail_uses_smaller_pages() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let region = mem
            .alloc(ZoneId(0), PAGE_SIZE_2M + 3 * PAGE_SIZE_4K, PAGE_SIZE_2M)
            .unwrap();
        pt.map(region.start.raw(), region.start, region.len, Perms::RWX, 3)
            .unwrap();
        let (c4k, c2m, _) = pt.leaf_counts().unwrap();
        assert_eq!(c2m, 1);
        assert_eq!(c4k, 3);
    }

    #[test]
    fn walk_not_present_fails() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let err = pt.walk(0xdead_0000, &DirectLoad(&mem)).unwrap_err();
        assert!(matches!(err, HwError::PageNotPresent { .. }));
    }

    #[test]
    fn unmap_then_walk_fails() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let data = mem.alloc_backed(ZoneId(0), 4 * 4096, PAGE_SIZE_4K).unwrap();
        pt.map(data.start.raw(), data.start, data.len, Perms::RWX, 1)
            .unwrap();
        pt.unmap(data.start.raw(), data.len).unwrap();
        assert!(pt.walk(data.start.raw(), &DirectLoad(&mem)).is_err());
    }

    #[test]
    fn partial_unmap_splits_large_page() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let region = mem.alloc(ZoneId(0), PAGE_SIZE_2M, PAGE_SIZE_2M).unwrap();
        pt.map(region.start.raw(), region.start, region.len, Perms::RWX, 2)
            .unwrap();
        // Unmap one 4 KiB page in the middle.
        let hole = region.start.raw() + 17 * PAGE_SIZE_4K;
        pt.unmap(hole, PAGE_SIZE_4K).unwrap();
        let mem_loader = DirectLoad(&mem);
        assert!(pt.walk(hole, &mem_loader).is_err());
        // Neighbours still mapped, now via 4 KiB leaves.
        let t = pt.walk(hole - PAGE_SIZE_4K, &mem_loader).unwrap();
        assert_eq!(t.page_size, PAGE_SIZE_4K);
        assert_eq!(t.pa.raw(), hole - PAGE_SIZE_4K);
        let (c4k, c2m, _) = pt.leaf_counts().unwrap();
        assert_eq!(c2m, 0);
        assert_eq!(c4k, 511);
    }

    #[test]
    fn unmap_hole_is_tolerated() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let data = mem.alloc(ZoneId(0), 4 * 4096, PAGE_SIZE_4K).unwrap();
        pt.map(data.start.raw(), data.start, 4096, Perms::RWX, 1)
            .unwrap();
        // Range covers pages that were never mapped.
        pt.unmap(data.start.raw(), data.len).unwrap();
        assert!(pt.walk(data.start.raw(), &DirectLoad(&mem)).is_err());
    }

    #[test]
    fn perms_recorded() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let data = mem.alloc(ZoneId(0), 4096, PAGE_SIZE_4K).unwrap();
        pt.map(data.start.raw(), data.start, 4096, Perms::RO, 1)
            .unwrap();
        let t = pt.walk(data.start.raw(), &DirectLoad(&mem)).unwrap();
        assert!(t.perms.r && !t.perms.w && !t.perms.x);
    }

    #[test]
    fn giant_page_mapping() {
        let mem = Arc::new(PhysMemory::new(&[4 * 1024 * 1024 * 1024]));
        let pool_region = mem
            .alloc_backed(ZoneId(0), 4 * 1024 * 1024, PAGE_SIZE_4K)
            .unwrap();
        let pool = Arc::new(FramePool::new(Arc::clone(&mem), pool_region));
        let pt = GuestPageTables::new(pool).unwrap();
        let region = mem.alloc(ZoneId(0), PAGE_SIZE_1G, PAGE_SIZE_1G).unwrap();
        pt.map(region.start.raw(), region.start, region.len, Perms::RWX, 3)
            .unwrap();
        let (_, _, c1g) = pt.leaf_counts().unwrap();
        assert_eq!(c1g, 1);
        let t = pt
            .walk(region.start.raw() + 12345, &DirectLoad(&mem))
            .unwrap();
        assert_eq!(t.page_size, PAGE_SIZE_1G);
        assert_eq!(t.loads, 2);
    }

    #[test]
    fn map_collision_with_larger_page_rejected() {
        let (mem, pool) = setup();
        let pt = GuestPageTables::new(pool).unwrap();
        let region = mem.alloc(ZoneId(0), PAGE_SIZE_2M, PAGE_SIZE_2M).unwrap();
        pt.map(
            region.start.raw(),
            region.start,
            PAGE_SIZE_2M,
            Perms::RWX,
            2,
        )
        .unwrap();
        let err = pt
            .map(
                region.start.raw() + PAGE_SIZE_4K,
                region.start,
                PAGE_SIZE_4K,
                Perms::RWX,
                1,
            )
            .unwrap_err();
        assert!(matches!(err, HwError::Invalid(_)));
        let _ = mem;
    }
}
