//! The master control process ("Leviathan"): node-wide coordination of
//! enclaves, shared memory and composite applications.

use crate::events::{FailureNotice, HobbesHooks, NoticeBoard};
use crate::{HobbesError, HobbesResult};
use covirt_simhw::addr::PhysRange;
use covirt_simhw::node::SimNode;
use kitten::KittenKernel;
use parking_lot::RwLock;
use pisces::enclave::EnclaveId;
use pisces::host::PiscesHost;
use pisces::resources::ResourceRequest;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use xemem::{SegmentId, XememService};

/// The master control process.
pub struct MasterControl {
    host: Arc<PiscesHost>,
    xemem: Arc<XememService>,
    kernels: RwLock<HashMap<u64, Arc<KittenKernel>>>,
    hooks: RwLock<Vec<Arc<dyn HobbesHooks>>>,
    /// Which enclaves share state (segid → attached+owner set), used to
    /// notify dependents on failure.
    dependencies: RwLock<HashMap<SegmentId, HashSet<u64>>>,
    /// Failure notices awaiting delivery.
    pub notices: NoticeBoard,
}

impl MasterControl {
    /// Bring up the master control on a node (loads the Pisces framework).
    pub fn new(node: Arc<SimNode>) -> Arc<Self> {
        Arc::new(MasterControl {
            host: PiscesHost::new(node),
            xemem: Arc::new(XememService::new()),
            kernels: RwLock::new(HashMap::new()),
            hooks: RwLock::new(Vec::new()),
            dependencies: RwLock::new(HashMap::new()),
            notices: NoticeBoard::new(),
        })
    }

    /// The Pisces framework instance.
    pub fn pisces(&self) -> &Arc<PiscesHost> {
        &self.host
    }

    /// The shared-memory service.
    pub fn xemem(&self) -> &Arc<XememService> {
        &self.xemem
    }

    /// Register Hobbes-level hooks (the Covirt controller does this).
    pub fn register_hooks(&self, hooks: Arc<dyn HobbesHooks>) {
        self.hooks.write().push(hooks);
    }

    /// Create + launch an enclave and boot a Kitten kernel in it. Returns
    /// the enclave and the kernel handle. (With Covirt active, launch
    /// interposition happens inside `PiscesHost::launch` via its hooks; the
    /// returned boot plan's params pointer is what Kitten reads either
    /// way.)
    pub fn bring_up_enclave(
        &self,
        name: &str,
        req: &ResourceRequest,
    ) -> HobbesResult<(Arc<pisces::Enclave>, Arc<KittenKernel>)> {
        let enclave = self.host.create_enclave(name, req)?;
        let plan = self.host.launch(&enclave)?;
        let kernel = Arc::new(KittenKernel::boot(
            &self.host.node().mem,
            plan.pisces_params_addr,
        )?);
        self.kernels
            .write()
            .insert(enclave.id.0, Arc::clone(&kernel));
        Ok((enclave, kernel))
    }

    /// Register an externally booted kernel (used when the caller drives
    /// the boot path itself, e.g. through the Covirt hypervisor).
    pub fn register_kernel(&self, enclave: u64, kernel: Arc<KittenKernel>) {
        self.kernels.write().insert(enclave, kernel);
    }

    /// The kernel for an enclave.
    pub fn kernel(&self, enclave: u64) -> HobbesResult<Arc<KittenKernel>> {
        self.kernels
            .read()
            .get(&enclave)
            .cloned()
            .ok_or(HobbesError::NoKernel(enclave))
    }

    /// Export a segment from an enclave's memory under a well-known name.
    /// The range must lie inside the owner's assignment.
    pub fn export_segment(
        &self,
        owner: u64,
        name: &str,
        range: PhysRange,
    ) -> HobbesResult<SegmentId> {
        if owner != 0 {
            let enclave = self.host.enclave(EnclaveId(owner))?;
            if !enclave.resources().covers(&range) {
                return Err(HobbesError::Invalid(
                    "export range outside owner assignment",
                ));
            }
        }
        let segid = self.xemem.export(name, owner, range)?;
        self.dependencies
            .write()
            .entry(segid)
            .or_default()
            .insert(owner);
        Ok(segid)
    }

    /// Attach enclave `who` to the named segment.
    ///
    /// Ordering (the Covirt contract): XEMEM bookkeeping → **hook** (EPT
    /// map) → guest kernel maps the pages → caller gets the range. The
    /// guest can only reach the pages after the hypervisor mapping exists.
    pub fn attach_segment(&self, who: u64, name: &str) -> HobbesResult<PhysRange> {
        let segid = self.xemem.lookup(name)?;
        let info = self.xemem.attach(segid, who)?;
        for h in self.hooks.read().iter() {
            if let Err(why) = h.on_xemem_attach_prepared(who, info.range) {
                // Roll back the attachment before propagating the veto.
                let _ = self.xemem.detach(segid, who);
                return Err(HobbesError::Vetoed(why));
            }
        }
        let kernel = self.kernel(who)?;
        // The attach transmits a page-frame list (XPMEM semantics); the
        // guest kernel maps it page by page. The Covirt EPT mapping above
        // covered the whole extent in one coalesced operation — which is
        // why the EPT update is invisible next to this linear work.
        let pages = info.page_frame_list();
        kernel.map_shared_pagelist(info.range, &pages)?;
        self.dependencies
            .write()
            .entry(segid)
            .or_default()
            .insert(who);
        Ok(info.range)
    }

    /// Detach enclave `who` from the named segment.
    ///
    /// Ordering: guest kernel unmaps → XEMEM bookkeeping → **hook** (EPT
    /// unmap + TLB flush) → memory may be reused.
    pub fn detach_segment(&self, who: u64, name: &str) -> HobbesResult<()> {
        let segid = self.xemem.lookup(name)?;
        let info = self.xemem.info(segid)?;
        let kernel = self.kernel(who)?;
        kernel.unmap_shared(info.range)?;
        self.xemem.detach(segid, who)?;
        for h in self.hooks.read().iter() {
            h.on_xemem_detach_acked(who, info.range)
                .map_err(HobbesError::Vetoed)?;
        }
        if let Some(deps) = self.dependencies.write().get_mut(&segid) {
            deps.remove(&who);
        }
        Ok(())
    }

    /// Destroy a segment. Returns enclaves that were still attached (the
    /// stale-mapping hazard — their kernels keep the mapping until their
    /// own cleanup runs, which with Covirt enabled is survivable).
    pub fn destroy_segment(&self, name: &str) -> HobbesResult<Vec<u64>> {
        let segid = self.xemem.lookup(name)?;
        let leftover = self.xemem.destroy(segid)?;
        self.dependencies.write().remove(&segid);
        Ok(leftover)
    }

    /// Fault path: an enclave died (Covirt containment calls this via the
    /// Pisces fault report). Notifies every enclave that shared a segment
    /// with it, as the paper's master control process is responsible for.
    pub fn handle_enclave_failure(&self, failed: u64, reason: &str) -> HobbesResult<()> {
        let enclave = self.host.enclave(EnclaveId(failed))?;
        self.host.report_fault(&enclave, reason)?;
        self.kernels.write().remove(&failed);
        let mut dependents: HashSet<u64> = HashSet::new();
        for (_segid, members) in self.dependencies.read().iter() {
            if members.contains(&failed) {
                dependents.extend(members.iter().filter(|&&m| m != failed && m != 0));
            }
        }
        for d in dependents {
            for h in self.hooks.read().iter() {
                h.on_dependency_failed(d, failed);
            }
            self.notices.post(FailureNotice {
                dependent: d,
                failed,
                reason: reason.to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::PAGE_SIZE_2M;
    use covirt_simhw::node::NodeConfig;
    use covirt_simhw::topology::{CoreId, ZoneId};
    use kitten::memmap::RegionKind;

    fn master() -> Arc<MasterControl> {
        MasterControl::new(SimNode::new(NodeConfig::small()))
    }

    fn req(core: usize) -> ResourceRequest {
        ResourceRequest::new(vec![CoreId(core)], vec![(ZoneId(0), 48 * 1024 * 1024)])
    }

    #[test]
    fn bring_up_registers_kernel() {
        let m = master();
        let (e, k) = m.bring_up_enclave("e0", &req(1)).unwrap();
        assert_eq!(e.state(), pisces::EnclaveState::Running);
        assert!(Arc::ptr_eq(&m.kernel(e.id.0).unwrap(), &k));
        assert!(m.kernel(99).is_err());
    }

    /// Carve an exportable range out of an enclave's assignment.
    fn carve(e: &pisces::Enclave) -> PhysRange {
        let r = e.resources().mem[0];
        PhysRange::new(r.start.add(r.len - 2 * PAGE_SIZE_2M), 2 * PAGE_SIZE_2M)
    }

    #[test]
    fn export_attach_detach_flow() {
        let m = master();
        let (e1, _k1) = m.bring_up_enclave("producer", &req(1)).unwrap();
        let (e2, k2) = m.bring_up_enclave("consumer", &req(2)).unwrap();
        let seg_range = carve(&e1);
        m.export_segment(e1.id.0, "exchange", seg_range).unwrap();

        let got = m.attach_segment(e2.id.0, "exchange").unwrap();
        assert_eq!(got, seg_range);
        // Consumer kernel can now translate the shared pages.
        assert!(k2.translate(seg_range.start.raw()).is_ok());
        assert_eq!(k2.memmap().by_kind(RegionKind::Shared).len(), 1);

        m.detach_segment(e2.id.0, "exchange").unwrap();
        assert!(k2.translate(seg_range.start.raw()).is_err());
    }

    #[test]
    fn export_outside_assignment_rejected() {
        let m = master();
        let (e1, _k1) = m.bring_up_enclave("e0", &req(1)).unwrap();
        let bogus = PhysRange::new(
            covirt_simhw::addr::HostPhysAddr::new(0x40_0000_0000),
            0x1000,
        );
        assert!(matches!(
            m.export_segment(e1.id.0, "bogus", bogus),
            Err(HobbesError::Invalid(_))
        ));
    }

    #[test]
    fn attach_veto_rolls_back() {
        struct Veto;
        impl HobbesHooks for Veto {
            fn on_xemem_attach_prepared(&self, _e: u64, _r: PhysRange) -> Result<(), String> {
                Err("no".into())
            }
        }
        let m = master();
        let (e1, _) = m.bring_up_enclave("p", &req(1)).unwrap();
        let (e2, _) = m.bring_up_enclave("c", &req(2)).unwrap();
        let segid = m.export_segment(e1.id.0, "x", carve(&e1)).unwrap();
        m.register_hooks(Arc::new(Veto));
        assert!(matches!(
            m.attach_segment(e2.id.0, "x"),
            Err(HobbesError::Vetoed(_))
        ));
        // Attachment rolled back in XEMEM.
        assert!(m.xemem().attachments(segid).unwrap().is_empty());
    }

    #[test]
    fn destroy_with_live_attachment_reports_hazard() {
        let m = master();
        let (e1, _) = m.bring_up_enclave("p", &req(1)).unwrap();
        let (e2, _) = m.bring_up_enclave("c", &req(2)).unwrap();
        m.export_segment(e1.id.0, "x", carve(&e1)).unwrap();
        m.attach_segment(e2.id.0, "x").unwrap();
        let leftover = m.destroy_segment("x").unwrap();
        assert_eq!(leftover, vec![e2.id.0]);
        assert_eq!(m.xemem().hazardous_destroy_count(), 1);
    }

    #[test]
    fn failure_notifies_dependents() {
        let m = master();
        let (e1, _) = m.bring_up_enclave("p", &req(1)).unwrap();
        let (e2, _) = m.bring_up_enclave("c", &req(2)).unwrap();
        m.export_segment(e1.id.0, "x", carve(&e1)).unwrap();
        m.attach_segment(e2.id.0, "x").unwrap();

        m.handle_enclave_failure(e1.id.0, "ept violation").unwrap();
        assert!(matches!(e1.state(), pisces::EnclaveState::Failed(_)));
        // The consumer is told its producer died.
        let notices = m.notices.drain();
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].dependent, e2.id.0);
        assert_eq!(notices[0].failed, e1.id.0);
        // The consumer itself keeps running.
        assert_eq!(e2.state(), pisces::EnclaveState::Running);
    }
}
