//! # hobbes — the master control process and application composition layer
//!
//! Hobbes is the exascale OS/R umbrella over Pisces/Kitten/XEMEM: a master
//! control process ("Leviathan") that coordinates resource assignment and
//! sharing across enclaves, plus the application-composition machinery that
//! lets one application span several OS/Rs. The Covirt *controller module*
//! is specified as being "integrated with the master control process", so
//! this crate provides the hook points ([`events::HobbesHooks`]) the
//! controller subscribes to for the XEMEM control paths, mirroring the
//! Pisces-level hooks for plain memory grants.

pub mod app;
pub mod events;
pub mod master;

pub use master::MasterControl;

/// Errors from the orchestration layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HobbesError {
    /// Pisces framework error.
    Pisces(pisces::PiscesError),
    /// XEMEM error.
    Xemem(xemem::XememError),
    /// Kitten kernel error.
    Kitten(kitten::KittenError),
    /// A hook vetoed the operation.
    Vetoed(String),
    /// Unknown enclave or no kernel registered for it.
    NoKernel(u64),
    /// Unknown application.
    NoSuchApp(u64),
    /// Malformed request.
    Invalid(&'static str),
}

impl std::fmt::Display for HobbesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HobbesError::Pisces(e) => write!(f, "pisces: {e}"),
            HobbesError::Xemem(e) => write!(f, "xemem: {e}"),
            HobbesError::Kitten(e) => write!(f, "kitten: {e}"),
            HobbesError::Vetoed(why) => write!(f, "vetoed: {why}"),
            HobbesError::NoKernel(id) => write!(f, "no kernel registered for enclave {id}"),
            HobbesError::NoSuchApp(id) => write!(f, "no such application: {id}"),
            HobbesError::Invalid(w) => write!(f, "invalid request: {w}"),
        }
    }
}

impl std::error::Error for HobbesError {}

impl From<pisces::PiscesError> for HobbesError {
    fn from(e: pisces::PiscesError) -> Self {
        HobbesError::Pisces(e)
    }
}

impl From<xemem::XememError> for HobbesError {
    fn from(e: xemem::XememError) -> Self {
        HobbesError::Xemem(e)
    }
}

impl From<kitten::KittenError> for HobbesError {
    fn from(e: kitten::KittenError) -> Self {
        HobbesError::Kitten(e)
    }
}

/// Result alias.
pub type HobbesResult<T> = Result<T, HobbesError>;
