//! Composite applications spanning multiple enclaves.
//!
//! Hobbes' signature capability: one application decomposed into components
//! running on different OS/Rs, glued together by XEMEM segments (Figure 1a
//! of the paper). The model creates one Kitten task per component, exports
//! a data-exchange segment from the first component's enclave, and attaches
//! every other component to it.

use crate::master::MasterControl;
use crate::{HobbesError, HobbesResult};
use covirt_simhw::addr::{PhysRange, PAGE_SIZE_2M};
use covirt_simhw::topology::CoreId;
use kitten::task::TaskId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One component of a composite application.
#[derive(Clone, Debug)]
pub struct Component {
    /// Component name (e.g. "simulation", "analytics").
    pub name: String,
    /// The enclave it runs in.
    pub enclave: u64,
    /// The Kitten task backing it.
    pub task: TaskId,
    /// Whether the component is still healthy.
    pub healthy: bool,
}

/// A composite application.
#[derive(Clone, Debug)]
pub struct App {
    /// Application id.
    pub id: u64,
    /// Application name.
    pub name: String,
    /// Components in composition order.
    pub components: Vec<Component>,
    /// The shared data-exchange segment name.
    pub exchange_segment: String,
    /// The exchange segment's range.
    pub exchange_range: PhysRange,
}

/// Specification of one component.
#[derive(Clone, Debug)]
pub struct ComponentSpec {
    /// Component name.
    pub name: String,
    /// Enclave to place it in.
    pub enclave: u64,
    /// Core (within the enclave) to pin its task to.
    pub core: CoreId,
}

/// The application composer.
pub struct Composer {
    master: Arc<MasterControl>,
    apps: RwLock<HashMap<u64, App>>,
    next_id: AtomicU64,
}

impl Composer {
    /// Build a composer over the master control.
    pub fn new(master: Arc<MasterControl>) -> Self {
        Composer {
            master,
            apps: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Compose an application from `specs` (first component's enclave owns
    /// the exchange segment of `exchange_bytes`, carved from the top of its
    /// assignment).
    pub fn compose(
        &self,
        name: &str,
        specs: &[ComponentSpec],
        exchange_bytes: u64,
    ) -> HobbesResult<App> {
        if specs.is_empty() {
            return Err(HobbesError::Invalid(
                "application needs at least one component",
            ));
        }
        let owner = specs[0].enclave;
        let owner_enclave = self.master.pisces().enclave(pisces::EnclaveId(owner))?;
        let first_region = owner_enclave
            .resources()
            .mem
            .first()
            .copied()
            .ok_or(HobbesError::Invalid("owner enclave has no memory"))?;
        let seg_len = exchange_bytes.div_ceil(PAGE_SIZE_2M) * PAGE_SIZE_2M;
        if seg_len >= first_region.len {
            return Err(HobbesError::Invalid(
                "exchange segment larger than owner region",
            ));
        }
        let exchange_range =
            PhysRange::new(first_region.start.add(first_region.len - seg_len), seg_len);

        let app_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let seg_name = format!("app{app_id}.{name}.exchange");
        self.master
            .export_segment(owner, &seg_name, exchange_range)?;

        let mut components = Vec::with_capacity(specs.len());
        for spec in specs {
            let kernel = self.master.kernel(spec.enclave)?;
            let task = kernel.spawn_task(&spec.name, spec.core)?;
            if spec.enclave != owner {
                self.master.attach_segment(spec.enclave, &seg_name)?;
            }
            components.push(Component {
                name: spec.name.clone(),
                enclave: spec.enclave,
                task,
                healthy: true,
            });
        }

        let app = App {
            id: app_id,
            name: name.to_owned(),
            components,
            exchange_segment: seg_name,
            exchange_range,
        };
        self.apps.write().insert(app_id, app.clone());
        Ok(app)
    }

    /// Snapshot of an application.
    pub fn app(&self, id: u64) -> HobbesResult<App> {
        self.apps
            .read()
            .get(&id)
            .cloned()
            .ok_or(HobbesError::NoSuchApp(id))
    }

    /// Mark components in a failed enclave unhealthy; returns how many
    /// components were affected across all apps.
    pub fn mark_enclave_failed(&self, enclave: u64) -> usize {
        let mut affected = 0;
        for app in self.apps.write().values_mut() {
            for c in app.components.iter_mut() {
                if c.enclave == enclave && c.healthy {
                    c.healthy = false;
                    affected += 1;
                }
            }
        }
        affected
    }

    /// All live applications.
    pub fn apps(&self) -> Vec<App> {
        let mut v: Vec<App> = self.apps.read().values().cloned().collect();
        v.sort_by_key(|a| a.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::node::{NodeConfig, SimNode};
    use covirt_simhw::topology::ZoneId;
    use pisces::resources::ResourceRequest;

    fn setup() -> (Arc<MasterControl>, Composer, u64, u64) {
        let m = MasterControl::new(SimNode::new(NodeConfig::small()));
        let (e1, _) = m
            .bring_up_enclave(
                "sim",
                &ResourceRequest::new(vec![CoreId(1)], vec![(ZoneId(0), 48 * 1024 * 1024)]),
            )
            .unwrap();
        let (e2, _) = m
            .bring_up_enclave(
                "ana",
                &ResourceRequest::new(vec![CoreId(2)], vec![(ZoneId(0), 48 * 1024 * 1024)]),
            )
            .unwrap();
        let c = Composer::new(Arc::clone(&m));
        (m, c, e1.id.0, e2.id.0)
    }

    #[test]
    fn compose_two_component_app() {
        let (m, c, e1, e2) = setup();
        let app = c
            .compose(
                "insitu",
                &[
                    ComponentSpec {
                        name: "simulation".into(),
                        enclave: e1,
                        core: CoreId(1),
                    },
                    ComponentSpec {
                        name: "analytics".into(),
                        enclave: e2,
                        core: CoreId(2),
                    },
                ],
                4 * 1024 * 1024,
            )
            .unwrap();
        assert_eq!(app.components.len(), 2);
        // Both kernels can reach the exchange segment.
        assert!(m
            .kernel(e1)
            .unwrap()
            .translate(app.exchange_range.start.raw())
            .is_ok());
        assert!(m
            .kernel(e2)
            .unwrap()
            .translate(app.exchange_range.start.raw())
            .is_ok());
        assert_eq!(c.apps().len(), 1);
        assert_eq!(c.app(app.id).unwrap().name, "insitu");
    }

    #[test]
    fn empty_spec_rejected() {
        let (_m, c, _e1, _e2) = setup();
        assert!(matches!(
            c.compose("x", &[], 1024),
            Err(HobbesError::Invalid(_))
        ));
    }

    #[test]
    fn failure_marks_components() {
        let (m, c, e1, e2) = setup();
        let app = c
            .compose(
                "insitu",
                &[
                    ComponentSpec {
                        name: "simulation".into(),
                        enclave: e1,
                        core: CoreId(1),
                    },
                    ComponentSpec {
                        name: "analytics".into(),
                        enclave: e2,
                        core: CoreId(2),
                    },
                ],
                2 * 1024 * 1024,
            )
            .unwrap();
        m.handle_enclave_failure(e1, "ept violation").unwrap();
        assert_eq!(c.mark_enclave_failed(e1), 1);
        let app = c.app(app.id).unwrap();
        assert!(!app.components[0].healthy);
        assert!(app.components[1].healthy);
    }

    #[test]
    fn oversized_exchange_rejected() {
        let (_m, c, e1, _e2) = setup();
        let r = c.compose(
            "big",
            &[ComponentSpec {
                name: "solo".into(),
                enclave: e1,
                core: CoreId(1),
            }],
            1 << 40,
        );
        assert!(matches!(r, Err(HobbesError::Invalid(_))));
    }
}
