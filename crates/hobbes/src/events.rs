//! Hobbes-level resource events and hook points.
//!
//! The Pisces hooks cover plain memory grants; these cover the *sharing*
//! control paths (XEMEM attach/detach) and cross-enclave lifecycle
//! notifications. Between the two hook sets, the Covirt controller sees
//! every event that changes an enclave's reachable hardware.

use covirt_simhw::addr::PhysRange;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Callbacks around Hobbes-level sharing operations. Veto by returning an
/// error string.
#[allow(unused_variables)]
pub trait HobbesHooks: Send + Sync {
    /// An XEMEM attach is about to become visible to enclave `enclave`.
    /// Covirt maps the segment into the enclave's EPT *here*, before the
    /// guest kernel learns the pages exist.
    fn on_xemem_attach_prepared(&self, enclave: u64, range: PhysRange) -> Result<(), String> {
        Ok(())
    }

    /// Enclave `enclave` has unmapped a detached (or destroyed) segment.
    /// Covirt unmaps the EPT entries and flushes the enclave's TLBs here,
    /// before the owner may reuse the memory.
    fn on_xemem_detach_acked(&self, enclave: u64, range: PhysRange) -> Result<(), String> {
        Ok(())
    }

    /// Enclave `failed` died; `dependent` had shared state with it.
    fn on_dependency_failed(&self, dependent: u64, failed: u64) {}
}

/// Recorded notification (delivered to components whose peer died).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureNotice {
    /// The enclave being told.
    pub dependent: u64,
    /// The enclave that failed.
    pub failed: u64,
    /// Reason string from the fault report.
    pub reason: String,
}

/// A simple mailbox of failure notices (per master control instance).
#[derive(Default)]
pub struct NoticeBoard {
    notices: Mutex<VecDeque<FailureNotice>>,
}

impl NoticeBoard {
    /// Empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a notice.
    pub fn post(&self, notice: FailureNotice) {
        self.notices.lock().push_back(notice);
    }

    /// Drain all notices.
    pub fn drain(&self) -> Vec<FailureNotice> {
        self.notices.lock().drain(..).collect()
    }

    /// Notices currently queued.
    pub fn len(&self) -> usize {
        self.notices.lock().len()
    }

    /// True if no notices are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notice_board_fifo() {
        let b = NoticeBoard::new();
        assert!(b.is_empty());
        b.post(FailureNotice {
            dependent: 1,
            failed: 2,
            reason: "ept".into(),
        });
        b.post(FailureNotice {
            dependent: 3,
            failed: 2,
            reason: "ept".into(),
        });
        assert_eq!(b.len(), 2);
        let drained = b.drain();
        assert_eq!(drained[0].dependent, 1);
        assert_eq!(drained[1].dependent, 3);
        assert!(b.is_empty());
    }

    #[test]
    fn default_hooks_are_permissive() {
        struct H;
        impl HobbesHooks for H {}
        let h = H;
        let r = PhysRange::new(covirt_simhw::addr::HostPhysAddr::new(0), 0x1000);
        assert!(h.on_xemem_attach_prepared(1, r).is_ok());
        assert!(h.on_xemem_detach_acked(1, r).is_ok());
        h.on_dependency_failed(1, 2);
    }
}
