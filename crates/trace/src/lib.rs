//! Flight recorder + unified metrics registry for the Covirt control plane.
//!
//! Covirt's evaluation needs *traces* (which event, when, on which core),
//! not just counters: a shootdown storm is explained by the interleaving of
//! controller posts, NMI kicks and per-core flushes, which aggregates
//! cannot show. This crate provides:
//!
//! * a lock-free per-lane **flight recorder** — one fixed-size ring of
//!   compact [`TraceEvent`] records per core (plus one lane for the
//!   controller), written with relaxed atomics behind a single
//!   `enabled` branch so the hot paths pay nothing when tracing is off;
//! * a **metrics registry** ([`MetricsRegistry`]) of per-lane sharded
//!   counters and log-bucketed latency histograms behind typed
//!   [`Counter`]/[`Hist`] enums;
//! * **exporters** ([`export`]) rendering a merged chronological dump as
//!   JSON Lines or chrome://tracing JSON;
//! * an online **protection-audit engine** ([`audit`]) that streams a
//!   dump through lifecycle stitching, invariant checkers and per-enclave
//!   SLO watchdogs.
//!
//! The crate is a leaf: it knows nothing about the simulated hardware.
//! Callers stamp events with their own TSC (a [`Tracer`] carries a
//! timestamp closure so emit sites stay one-liners).
//!
//! ## Ring protocol
//!
//! Each lane has one *logical* writer (the thread driving that core; the
//! controller gets its own lane), but the ring is robust to concurrent
//! readers and even misbehaving extra writers: slots carry a seqlock-style
//! sequence word (`2*idx + 1` while a write is in flight, `2*idx + 2` once
//! slot content for stream index `idx` is committed). A reader that
//! observes an odd sequence, or a sequence that changed across its payload
//! read, discards the slot — torn records are *detected*, never returned.

pub mod audit;
pub mod bench;
pub mod export;
pub mod metrics;
pub mod profile;

pub use metrics::{Counter, Hist, HistSnapshot, MetricsRegistry};
pub use profile::{Phase, PhaseProfiler, PhaseTracker, ProfileSnapshot};

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default events retained per lane.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

/// What happened. Payload words `a`/`b` are event-specific; kinds that
/// carry a name (exit reasons, control-channel tags) pack it with
/// [`pack_str`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// VM exit recorded (span begin). `a`,`b`: packed exit-reason name.
    ExitEnter = 1,
    /// VM exit handled, guest re-entered (span end). `a`: handle ns,
    /// `b`: unused (0).
    ExitLeave = 2,
    /// Command posted to a core's queue. `a`: seq, `b`: target core.
    CmdPost = 3,
    /// Hypervisor drained its queue. `a`: commands drained, `b`: unused (0).
    CmdDrain = 4,
    /// Command executed + acknowledged. `a`: seq, `b`: post→complete ns
    /// (0 when the poster's recorder was off).
    CmdComplete = 5,
    /// Controller finished waiting on a completion. `a`: seq, `b`: wait ns.
    CmdWait = 6,
    /// NMI kick sent. `a`: sender core, `b`: destination core.
    NmiKick = 7,
    /// Full TLB flush executed. `a`,`b`: unused (0).
    TlbFlushAll = 8,
    /// Single-page TLB invalidation. `a`: gva, `b`: unused (0).
    TlbFlushPage = 9,
    /// Ranged TLB invalidation. `a`: gva, `b`: len.
    TlbFlushRange = 10,
    /// EPT mapping installed. `a`: start, `b`: len.
    EptMap = 11,
    /// EPT mapping removed. `a`: start, `b`: len.
    EptUnmap = 12,
    /// Populate snapshot published. `a`: generation, `b`: region count.
    SnapshotPublish = 13,
    /// Retired snapshots freed at a quiescent publish. `a`: count freed,
    /// `b`: unused (0).
    SnapshotRetire = 14,
    /// Memory granted to the enclave. `a`: start, `b`: len.
    Grant = 15,
    /// Memory reclaimed (unmapped, shootdown issued/deferred). `a`: start,
    /// `b`: len.
    Reclaim = 16,
    /// Broadcast shootdown phase 1 begins (span begin). `a`: ranges,
    /// `b`: 1 if range-flush commands were selected, else 0.
    ShootdownBegin = 17,
    /// Broadcast shootdown fully acknowledged (span end). `a`: rtt ns,
    /// `b`: unused (0).
    ShootdownEnd = 18,
    /// XEMEM segment attached. `a`: start, `b`: len.
    XememAttach = 19,
    /// XEMEM segment detached. `a`: start, `b`: len.
    XememDetach = 20,
    /// IPI vector whitelisted. `a`: vector, `b`: unused (0).
    VectorAlloc = 21,
    /// IPI vector revoked. `a`: vector, `b`: unused (0).
    VectorFree = 22,
    /// Enclave virtualization context torn down. `a`: enclave id,
    /// `b`: unused (0).
    Teardown = 23,
    /// Fault-isolation teardown reported. `a`: enclave id, `b`: core.
    FaultReport = 24,
    /// Control-channel message sent. `a`,`b`: packed message tag.
    CtrlSend = 25,
    /// Control-channel message received. `a`,`b`: packed message tag.
    CtrlRecv = 26,
    /// Posted-interrupt vectors harvested exit-lessly. `a`: count,
    /// `b`: unused (0).
    PostedHarvest = 27,
    /// Command doorbell posted into a core's posted-interrupt descriptor
    /// (exitless delivery; no NMI sent). `a`: sequence number of the
    /// command the doorbell signals, `b`: destination core.
    CmdDoorbell = 28,
    /// Command queue drained in guest mode after a doorbell harvest — no
    /// VM exit involved. `a`: commands drained, `b`: unused (0).
    CmdHarvest = 29,
    /// Zone-sharded snapshot published. `a`: zone, `b`: zone generation.
    ZonePublish = 30,
    /// Retired zone snapshots freed at an epoch advance. `a`: zone,
    /// `b`: count freed.
    ZoneRetire = 31,
    /// Retired-snapshot backlog reached a new high-water mark. `a`: zone,
    /// `b`: new high-water (snapshots awaiting a grace period).
    RetireBacklog = 32,
}

impl EventKind {
    /// Every kind, for decoders and summaries.
    pub const ALL: [EventKind; 32] = [
        EventKind::ExitEnter,
        EventKind::ExitLeave,
        EventKind::CmdPost,
        EventKind::CmdDrain,
        EventKind::CmdComplete,
        EventKind::CmdWait,
        EventKind::NmiKick,
        EventKind::TlbFlushAll,
        EventKind::TlbFlushPage,
        EventKind::TlbFlushRange,
        EventKind::EptMap,
        EventKind::EptUnmap,
        EventKind::SnapshotPublish,
        EventKind::SnapshotRetire,
        EventKind::Grant,
        EventKind::Reclaim,
        EventKind::ShootdownBegin,
        EventKind::ShootdownEnd,
        EventKind::XememAttach,
        EventKind::XememDetach,
        EventKind::VectorAlloc,
        EventKind::VectorFree,
        EventKind::Teardown,
        EventKind::FaultReport,
        EventKind::CtrlSend,
        EventKind::CtrlRecv,
        EventKind::PostedHarvest,
        EventKind::CmdDoorbell,
        EventKind::CmdHarvest,
        EventKind::ZonePublish,
        EventKind::ZoneRetire,
        EventKind::RetireBacklog,
    ];

    /// Stable wire/display name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ExitEnter => "exit_enter",
            EventKind::ExitLeave => "exit_leave",
            EventKind::CmdPost => "cmd_post",
            EventKind::CmdDrain => "cmd_drain",
            EventKind::CmdComplete => "cmd_complete",
            EventKind::CmdWait => "cmd_wait",
            EventKind::NmiKick => "nmi_kick",
            EventKind::TlbFlushAll => "tlb_flush_all",
            EventKind::TlbFlushPage => "tlb_flush_page",
            EventKind::TlbFlushRange => "tlb_flush_range",
            EventKind::EptMap => "ept_map",
            EventKind::EptUnmap => "ept_unmap",
            EventKind::SnapshotPublish => "snapshot_publish",
            EventKind::SnapshotRetire => "snapshot_retire",
            EventKind::Grant => "grant",
            EventKind::Reclaim => "reclaim",
            EventKind::ShootdownBegin => "shootdown_begin",
            EventKind::ShootdownEnd => "shootdown_end",
            EventKind::XememAttach => "xemem_attach",
            EventKind::XememDetach => "xemem_detach",
            EventKind::VectorAlloc => "vector_alloc",
            EventKind::VectorFree => "vector_free",
            EventKind::Teardown => "teardown",
            EventKind::FaultReport => "fault_report",
            EventKind::CtrlSend => "ctrl_send",
            EventKind::CtrlRecv => "ctrl_recv",
            EventKind::PostedHarvest => "posted_harvest",
            EventKind::CmdDoorbell => "cmd_doorbell",
            EventKind::CmdHarvest => "cmd_harvest",
            EventKind::ZonePublish => "zone_publish",
            EventKind::ZoneRetire => "zone_retire",
            EventKind::RetireBacklog => "retire_backlog",
        }
    }

    /// Whether `a`/`b` carry a [`pack_str`]-packed name.
    pub fn carries_name(&self) -> bool {
        matches!(
            self,
            EventKind::ExitEnter | EventKind::CtrlSend | EventKind::CtrlRecv
        )
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v.wrapping_sub(1) as usize).copied()
    }
}

/// Pack up to 16 bytes of a name into two payload words (little-endian,
/// zero-padded) so events can carry `&'static str` identities without the
/// recorder knowing the namespace.
pub fn pack_str(s: &str) -> (u64, u64) {
    let mut buf = [0u8; 16];
    let bytes = s.as_bytes();
    let n = bytes.len().min(16);
    buf[..n].copy_from_slice(&bytes[..n]);
    (
        u64::from_le_bytes(buf[..8].try_into().unwrap()),
        u64::from_le_bytes(buf[8..].try_into().unwrap()),
    )
}

/// Inverse of [`pack_str`].
pub fn unpack_str(a: u64, b: u64) -> String {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&a.to_le_bytes());
    buf[8..].copy_from_slice(&b.to_le_bytes());
    let end = buf.iter().position(|&c| c == 0).unwrap_or(16);
    String::from_utf8_lossy(&buf[..end]).into_owned()
}

/// Enclave-attribution tags ride in the high 24 bits of a slot's meta
/// word; ids at or above this alias to the max tag (never hit in practice
/// — enclave ids are small and sequential).
const ENCLAVE_TAG_MAX: u64 = (1 << 24) - 1;

#[inline]
fn enclave_tag(enclave: Option<u64>) -> u64 {
    match enclave {
        Some(id) => id.saturating_add(1).min(ENCLAVE_TAG_MAX),
        None => 0,
    }
}

/// One flight-recorder record: 40 bytes of payload, no pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated-TSC timestamp.
    pub tsc: u64,
    /// Lane (== core id; the last lane is the controller's).
    pub lane: u32,
    /// Position in the lane's event stream (monotonic per lane; survives
    /// wraparound, so dumps expose how many events were overwritten).
    pub idx: u64,
    /// What happened.
    pub kind: EventKind,
    /// The enclave this event is attributed to, when the emitter tagged
    /// one (see [`Tracer::with_enclave`] / [`Tracer::emit_for`]).
    pub enclave: Option<u64>,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// One ring slot. `seq` is the seqlock word; payload words are relaxed
/// atomics so concurrent read/write stays defined — the seqlock detects
/// (and discards) torn payloads rather than preventing them.
struct Slot {
    seq: AtomicU64,
    tsc: AtomicU64,
    /// kind (low 8 bits) | lane (bits 8..40) | enclave tag (bits 40..64,
    /// `enclave_id + 1`, 0 = unattributed).
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            tsc: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One per-core ring.
struct Lane {
    /// Next stream index to write (fetch_add reservation).
    next: AtomicU64,
    slots: Box<[Slot]>,
}

impl Lane {
    fn new(capacity: usize) -> Lane {
        Lane {
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    #[inline]
    fn write(&self, lane: u32, tag: u64, kind: EventKind, tsc: u64, a: u64, b: u64) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
        // Odd = write in flight. Release so the odd marker is visible
        // before any payload store can be observed as part of this write.
        slot.seq.store(idx * 2 + 1, Ordering::Release);
        slot.tsc.store(tsc, Ordering::Relaxed);
        slot.meta.store(
            kind as u64 | ((lane as u64) << 8) | (tag << 40),
            Ordering::Relaxed,
        );
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        // Even = committed for stream index `idx`; Release publishes the
        // payload to any reader that acquires this value.
        slot.seq.store(idx * 2 + 2, Ordering::Release);
    }

    /// Snapshot every coherent record, oldest first. Records a concurrent
    /// writer is mid-overwriting are skipped.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // empty or write in flight
            }
            let tsc = slot.tsc.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // The fence orders the payload loads before the re-check: if
            // seq is unchanged, no writer touched the slot in between and
            // the payload is the one committed under s1.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten mid-read — discard
            }
            let Some(kind) = EventKind::from_u8(meta as u8) else {
                continue;
            };
            let tag = meta >> 40;
            out.push(TraceEvent {
                tsc,
                lane: (meta >> 8) as u32,
                idx: (s1 - 2) / 2,
                kind,
                enclave: (tag != 0).then(|| tag - 1),
                a,
                b,
            });
        }
        out.sort_by_key(|e| e.idx);
        out
    }

    /// Deliver the committed records at stream indices `cursor..`, oldest
    /// first, without consuming them: `(events, next_cursor,
    /// dropped_since)`. The cursor is the next undelivered stream index;
    /// pass `next_cursor` back in to tail incrementally. `dropped_since`
    /// counts records in `cursor..next_cursor` the ring overwrote before
    /// (or while) they could be read. Delivery is a strict prefix of the
    /// readable range — the walk stops at the first slot whose write is
    /// still in flight, so a record is never skipped and later delivered
    /// (no reordering, no double delivery across calls).
    fn tail_from(&self, cursor: u64) -> (Vec<TraceEvent>, u64, u64) {
        let cap = self.slots.len() as u64;
        let next = self.next.load(Ordering::Acquire);
        if next <= cursor {
            // Nothing new; a cursor from the future stays put.
            return (Vec::new(), cursor, 0);
        }
        // Everything older than one ring's worth is already overwritten.
        let start = cursor.max(next.saturating_sub(cap));
        let mut dropped = start - cursor;
        let mut out = Vec::with_capacity((next - start) as usize);
        let mut pos = start;
        while pos < next {
            let want = pos * 2 + 2;
            let slot = &self.slots[(pos as usize) & (self.slots.len() - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 < want {
                // The slot still holds older content or an in-flight
                // write for `pos` (the writer reserves the index before
                // committing). Stop so delivery stays a strict prefix;
                // the next call resumes here.
                break;
            }
            if s1 > want {
                // The ring lapped `pos` after the `next` load.
                dropped += 1;
                pos += 1;
                continue;
            }
            let tsc = slot.tsc.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Same seqlock re-check as `snapshot`: unchanged seq means no
            // writer touched the slot across the payload loads.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                dropped += 1; // overwritten mid-read — the record is gone
                pos += 1;
                continue;
            }
            match EventKind::from_u8(meta as u8) {
                Some(kind) => {
                    let tag = meta >> 40;
                    out.push(TraceEvent {
                        tsc,
                        lane: (meta >> 8) as u32,
                        idx: pos,
                        kind,
                        enclave: (tag != 0).then(|| tag - 1),
                        a,
                        b,
                    });
                }
                None => dropped += 1, // undecodable — count as lost
            }
            pos += 1;
        }
        (out, pos, dropped)
    }
}

/// The flight recorder: one ring per lane plus the metrics registry, so a
/// single handle gives a run's trace *and* its counter/histogram snapshot.
pub struct Recorder {
    enabled: AtomicBool,
    lanes: Vec<Lane>,
    metrics: MetricsRegistry,
    profile: Arc<profile::PhaseProfiler>,
}

impl Recorder {
    /// A recorder with `lanes` rings of `capacity` events each (rounded up
    /// to a power of two). Tracing starts disabled.
    pub fn new(lanes: usize, capacity: usize) -> Arc<Recorder> {
        let lanes = lanes.max(1);
        let capacity = capacity.max(2).next_power_of_two();
        Arc::new(Recorder {
            enabled: AtomicBool::new(false),
            lanes: (0..lanes).map(|_| Lane::new(capacity)).collect(),
            metrics: MetricsRegistry::new(lanes),
            profile: profile::PhaseProfiler::new(lanes),
        })
    }

    /// The phase profiler sharing this recorder's lane layout. Gated
    /// independently of tracing (`PhaseProfiler::set_enabled`), so cycle
    /// accounting can run with the event rings off and vice versa.
    pub fn profiler(&self) -> &Arc<profile::PhaseProfiler> {
        &self.profile
    }

    /// Whether tracing is on — the one branch the hot paths pay.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Number of lanes (cores + 1 controller lane by convention).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The controller's lane (last, by convention).
    pub fn controller_lane(&self) -> u32 {
        (self.lanes.len() - 1) as u32
    }

    /// The unified metrics registry sharing this recorder's lanes.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Emit one event if tracing is enabled. Out-of-range lanes clamp to
    /// the last (controller) lane.
    #[inline]
    pub fn emit(&self, lane: u32, kind: EventKind, tsc: u64, a: u64, b: u64) {
        self.emit_tagged(lane, None, kind, tsc, a, b);
    }

    /// [`Recorder::emit`] with an enclave-attribution tag packed into the
    /// record's meta word (the audit engine keys per-enclave rollups and
    /// lifecycle chains off it).
    #[inline]
    pub fn emit_tagged(
        &self,
        lane: u32,
        enclave: Option<u64>,
        kind: EventKind,
        tsc: u64,
        a: u64,
        b: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let li = (lane as usize).min(self.lanes.len() - 1);
        self.lanes[li].write(lane, enclave_tag(enclave), kind, tsc, a, b);
    }

    /// One lane's coherent records, oldest first.
    pub fn lane_events(&self, lane: u32) -> Vec<TraceEvent> {
        self.lanes
            .get(lane as usize)
            .map(|l| l.snapshot())
            .unwrap_or_default()
    }

    /// Merged chronological dump across all lanes, sorted by TSC (lane and
    /// stream index break ties deterministically).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.lanes.iter().flat_map(|l| l.snapshot()).collect();
        all.sort_by_key(|e| (e.tsc, e.lane, e.idx));
        all
    }

    /// Live-tail one lane from a cursor: `(events, next_cursor,
    /// dropped_since)`. The cursor is the next undelivered stream index
    /// (start at 0); feed `next_cursor` back in to stream the lane
    /// incrementally while writers are still emitting. `dropped_since`
    /// counts records in the cursor window the ring overwrote before they
    /// could be delivered. Unknown lanes return an empty batch with the
    /// cursor unchanged.
    pub fn tail_from(&self, lane: u32, cursor: u64) -> (Vec<TraceEvent>, u64, u64) {
        self.lanes
            .get(lane as usize)
            .map(|l| l.tail_from(cursor))
            .unwrap_or((Vec::new(), cursor, 0))
    }

    /// Live-tail every lane at once, merging the batches chronologically.
    /// `cursors` is resized to the lane count (new lanes start at 0) and
    /// advanced in place; returns `(events, dropped_since)` summed across
    /// lanes. Within a lane the merged batch preserves stream order, so
    /// incremental consumers (the audit engine) see each lane gap-free.
    pub fn tail_all(&self, cursors: &mut Vec<u64>) -> (Vec<TraceEvent>, u64) {
        cursors.resize(self.lanes.len(), 0);
        let mut all = Vec::new();
        let mut dropped = 0;
        for (lane, cursor) in cursors.iter_mut().enumerate() {
            let (events, next, d) = self.lanes[lane].tail_from(*cursor);
            all.extend(events);
            *cursor = next;
            dropped += d;
        }
        all.sort_by_key(|e| (e.tsc, e.lane, e.idx));
        (all, dropped)
    }

    /// Total events ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.next.load(Ordering::Relaxed))
            .sum()
    }

    /// Events per lane ring (all lanes share one capacity; 0 if the
    /// recorder somehow has no lanes — `drop` accounting must not panic).
    pub fn lane_capacity(&self) -> u64 {
        self.lanes.first().map_or(0, |l| l.slots.len() as u64)
    }

    /// Events ever emitted on one lane (including overwritten ones).
    pub fn lane_emitted(&self, lane: u32) -> u64 {
        self.lanes
            .get(lane as usize)
            .map(|l| l.next.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Events a lane's ring has overwritten (dropped from any future
    /// dump): everything emitted beyond the ring's capacity.
    pub fn lane_dropped(&self, lane: u32) -> u64 {
        self.lane_emitted(lane).saturating_sub(self.lane_capacity())
    }

    /// Overwritten (dropped) events summed across all lanes.
    pub fn dropped(&self) -> u64 {
        (0..self.lanes.len() as u32)
            .map(|l| self.lane_dropped(l))
            .sum()
    }

    /// Per-lane dropped-event counts, in lane order.
    pub fn drops_per_lane(&self) -> Vec<u64> {
        (0..self.lanes.len() as u32)
            .map(|l| self.lane_dropped(l))
            .collect()
    }
}

/// A cheap per-call-site handle: recorder + lane + timestamp source. The
/// closure indirection only runs when tracing is enabled — `emit` checks
/// the flag before taking a timestamp.
#[derive(Clone)]
pub struct Tracer {
    rec: Arc<Recorder>,
    lane: u32,
    /// Default enclave attribution for every emit (None = untagged).
    enclave: Option<u64>,
    now: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl Tracer {
    /// A tracer stamping events for `lane` with timestamps from `now`.
    pub fn new(rec: Arc<Recorder>, lane: u32, now: Arc<dyn Fn() -> u64 + Send + Sync>) -> Tracer {
        Tracer {
            rec,
            lane,
            enclave: None,
            now,
        }
    }

    /// Tag every event this tracer emits with an enclave id, so the audit
    /// engine can attribute exits, commands and shootdowns per enclave.
    pub fn with_enclave(mut self, enclave: u64) -> Tracer {
        self.enclave = Some(enclave);
        self
    }

    /// The enclave this tracer attributes events to, if any.
    pub fn enclave(&self) -> Option<u64> {
        self.enclave
    }

    /// The lane this tracer writes.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The recorder behind this tracer.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.rec
    }

    /// Whether tracing is on (hot-path gate).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Emit with a timestamp from the tracer's clock.
    #[inline]
    pub fn emit(&self, kind: EventKind, a: u64, b: u64) {
        if self.rec.enabled() {
            self.rec
                .emit_tagged(self.lane, self.enclave, kind, (self.now)(), a, b);
        }
    }

    /// Emit attributed to an explicit enclave, overriding the tracer's
    /// default tag — for shared call sites (controller hooks) that serve
    /// many enclaves through one tracer.
    #[inline]
    pub fn emit_for(&self, enclave: u64, kind: EventKind, a: u64, b: u64) {
        if self.rec.enabled() {
            self.rec
                .emit_tagged(self.lane, Some(enclave), kind, (self.now)(), a, b);
        }
    }

    /// Emit with a caller-supplied timestamp (e.g. the exit-info TSC).
    #[inline]
    pub fn emit_at(&self, kind: EventKind, tsc: u64, a: u64, b: u64) {
        self.rec
            .emit_tagged(self.lane, self.enclave, kind, tsc, a, b);
    }

    /// [`Tracer::emit_at`] attributed to an explicit enclave.
    #[inline]
    pub fn emit_at_for(&self, enclave: u64, kind: EventKind, tsc: u64, a: u64, b: u64) {
        self.rec
            .emit_tagged(self.lane, Some(enclave), kind, tsc, a, b);
    }

    /// Record a latency sample into the registry (gated like `emit`).
    #[inline]
    pub fn observe(&self, hist: Hist, value: u64) {
        if self.rec.enabled() {
            self.rec.metrics.observe(self.lane as usize, hist, value);
        }
    }

    /// Bump a registry counter on this tracer's lane (not gated: counters
    /// replace always-on instrumentation).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        self.rec.metrics.add(self.lane as usize, counter, n);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(lane {})", self.lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> Arc<Recorder> {
        let r = Recorder::new(3, 16);
        r.set_enabled(true);
        r
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let r = Recorder::new(2, 16);
        r.emit(0, EventKind::Grant, 10, 1, 2);
        assert!(r.drain().is_empty());
        assert_eq!(r.emitted(), 0);
    }

    #[test]
    fn events_roundtrip_and_merge_sorted() {
        let r = recorder();
        r.emit(1, EventKind::CmdPost, 30, 7, 1);
        r.emit(0, EventKind::Grant, 10, 0x1000, 0x2000);
        r.emit(2, EventKind::CmdComplete, 20, 7, 900);
        let all = r.drain();
        assert_eq!(all.len(), 3);
        assert_eq!(
            all.iter().map(|e| e.tsc).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(all[0].kind, EventKind::Grant);
        assert_eq!(all[0].a, 0x1000);
        assert_eq!(all[2].lane, 1);
    }

    #[test]
    fn wraparound_keeps_latest_capacity_events() {
        let r = recorder(); // capacity 16 per lane
        for i in 0..40u64 {
            r.emit(0, EventKind::CmdPost, 100 + i, i, 0);
        }
        let events = r.lane_events(0);
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().idx, 24);
        assert_eq!(events.last().unwrap().idx, 39);
        assert_eq!(events.last().unwrap().a, 39);
        assert_eq!(r.emitted(), 40);
    }

    #[test]
    fn out_of_range_lane_clamps_to_controller() {
        let r = recorder();
        r.emit(99, EventKind::Teardown, 5, 1, 0);
        // Stored in the last ring, but tagged with the caller's lane id.
        assert_eq!(r.lane_events(2).len(), 1);
        assert_eq!(r.lane_events(2)[0].lane, 99);
    }

    #[test]
    fn pack_unpack_str_roundtrip() {
        for s in ["cpuid", "ept_violation", "a-16-byte-name!!", ""] {
            let (a, b) = pack_str(s);
            assert_eq!(unpack_str(a, b), s[..s.len().min(16)]);
        }
        // Longer than 16 bytes truncates.
        let (a, b) = pack_str("external_interrupt");
        assert_eq!(unpack_str(a, b), "external_interru");
    }

    #[test]
    fn tracer_uses_clock_closure() {
        let r = recorder();
        let t = Tracer::new(Arc::clone(&r), 1, Arc::new(|| 777));
        t.emit(EventKind::NmiKick, 0, 1);
        let e = &r.lane_events(1)[0];
        assert_eq!(e.tsc, 777);
        assert_eq!(e.kind, EventKind::NmiKick);
    }

    #[test]
    fn kind_codes_roundtrip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    /// The kind→name table must stay exhaustive: `EventKind::name` is a
    /// match without a wildcard (a new kind without a name is a compile
    /// error), `ALL` must enumerate every discriminant contiguously, and
    /// names must be unique, non-empty wire identifiers.
    #[test]
    fn kind_name_table_exhaustive() {
        use std::collections::HashSet;
        // Discriminants are 1..=N with no gaps, in declaration order.
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8, (i + 1) as u8, "ALL must match discriminants");
        }
        assert_eq!(
            EventKind::from_u8(EventKind::ALL.len() as u8 + 1),
            None,
            "ALL must cover every defined kind"
        );
        let names: HashSet<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len(), "names must be unique");
        for n in names {
            assert!(!n.is_empty());
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{n} is not a wire-safe name"
            );
        }
    }

    #[test]
    fn enclave_tag_roundtrips_through_meta_word() {
        let r = recorder();
        r.emit_tagged(0, Some(0), EventKind::Grant, 10, 1, 2);
        r.emit_tagged(0, Some(41), EventKind::Reclaim, 20, 3, 4);
        r.emit(0, EventKind::CmdPost, 30, 5, 6);
        let evs = r.lane_events(0);
        assert_eq!(evs[0].enclave, Some(0));
        assert_eq!(evs[1].enclave, Some(41));
        assert_eq!(evs[2].enclave, None);
        // Huge ids clamp instead of corrupting lane/kind bits.
        r.emit_tagged(1, Some(u64::MAX), EventKind::Teardown, 40, 0, 0);
        let e = &r.lane_events(1)[0];
        assert_eq!(e.kind, EventKind::Teardown);
        assert_eq!(e.lane, 1);
        assert_eq!(e.enclave, Some(ENCLAVE_TAG_MAX - 1));
    }

    #[test]
    fn tracer_enclave_tagging() {
        let r = recorder();
        let t = Tracer::new(Arc::clone(&r), 1, Arc::new(|| 5)).with_enclave(7);
        assert_eq!(t.enclave(), Some(7));
        t.emit(EventKind::ExitLeave, 100, 0);
        t.emit_for(9, EventKind::Grant, 0x1000, 0x2000);
        t.emit_at(EventKind::CmdDrain, 6, 1, 0);
        t.emit_at_for(9, EventKind::ShootdownBegin, 7, 1, 0);
        let evs = r.lane_events(1);
        assert_eq!(evs[0].enclave, Some(7));
        assert_eq!(evs[1].enclave, Some(9));
        assert_eq!(evs[2].enclave, Some(7));
        assert_eq!(evs[3].enclave, Some(9));
    }

    #[test]
    fn lane_drop_accounting() {
        let r = recorder(); // capacity 16 per lane
        assert_eq!(r.lane_capacity(), 16);
        for i in 0..40u64 {
            r.emit(0, EventKind::CmdPost, 100 + i, i, 0);
        }
        r.emit(1, EventKind::Grant, 1, 0, 0);
        assert_eq!(r.lane_emitted(0), 40);
        assert_eq!(r.lane_dropped(0), 24);
        assert_eq!(r.lane_dropped(1), 0);
        assert_eq!(r.dropped(), 24);
        assert_eq!(r.drops_per_lane(), vec![24, 0, 0]);
    }

    /// Regression: `lane_capacity` indexed `lanes[0]` unconditionally and
    /// panicked on a recorder with no lanes, taking `dropped()` and
    /// `drops_per_lane()` down with it. The constructor clamps to one
    /// lane, so build the degenerate value directly.
    #[test]
    fn zero_lane_recorder_does_not_panic() {
        let r = Recorder {
            enabled: AtomicBool::new(true),
            lanes: Vec::new(),
            metrics: MetricsRegistry::new(0),
            profile: profile::PhaseProfiler::new(0),
        };
        assert_eq!(r.lane_capacity(), 0);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.drops_per_lane(), Vec::<u64>::new());
        assert!(r.drain().is_empty());
        let (events, next, dropped) = r.tail_from(0, 0);
        assert!(events.is_empty());
        assert_eq!((next, dropped), (0, 0));
    }

    #[test]
    fn constructor_clamps_degenerate_shapes() {
        let r = Recorder::new(0, 0);
        assert_eq!(r.lane_count(), 1);
        assert_eq!(r.lane_capacity(), 2);
        assert_eq!(r.controller_lane(), 0);
        r.set_enabled(true);
        r.emit(0, EventKind::Grant, 1, 2, 3);
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn tail_from_is_incremental_without_double_delivery() {
        let r = recorder();
        for i in 0..5u64 {
            r.emit(0, EventKind::CmdPost, 100 + i, i, 0);
        }
        let (batch1, cur, d1) = r.tail_from(0, 0);
        assert_eq!(batch1.len(), 5);
        assert_eq!((cur, d1), (5, 0));

        // Nothing new: cursor stays put, nothing re-delivered.
        let (empty, cur2, d2) = r.tail_from(0, cur);
        assert!(empty.is_empty());
        assert_eq!((cur2, d2), (5, 0));

        for i in 5..8u64 {
            r.emit(0, EventKind::CmdPost, 100 + i, i, 0);
        }
        let (batch2, cur3, d3) = r.tail_from(0, cur2);
        assert_eq!(
            batch2.iter().map(|e| e.idx).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!((cur3, d3), (8, 0));
    }

    #[test]
    fn tail_from_counts_lapped_records_as_dropped() {
        let r = recorder(); // capacity 16 per lane
        for i in 0..40u64 {
            r.emit(0, EventKind::CmdPost, 100 + i, i, 0);
        }
        let (events, cur, dropped) = r.tail_from(0, 0);
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().idx, 24);
        assert_eq!(cur, 40);
        assert_eq!(dropped, 24);
        // Accounting invariant: delivered + dropped == emitted.
        assert_eq!(events.len() as u64 + dropped, r.lane_emitted(0));
        // A stale cursor mid-ring only loses the overwritten prefix.
        let (tail, cur2, d2) = r.tail_from(0, 30);
        assert_eq!(tail.first().unwrap().idx, 30);
        assert_eq!((cur2, d2), (40, 0));
    }

    #[test]
    fn tail_from_future_cursor_stays_put() {
        let r = recorder();
        r.emit(0, EventKind::Grant, 1, 0, 0);
        let (events, cur, dropped) = r.tail_from(0, 99);
        assert!(events.is_empty());
        assert_eq!((cur, dropped), (99, 0));
    }

    #[test]
    fn tail_all_merges_lanes_and_advances_cursors() {
        let r = recorder();
        r.emit(1, EventKind::CmdPost, 30, 7, 1);
        r.emit(0, EventKind::Grant, 10, 0x1000, 0x2000);
        r.emit(2, EventKind::CmdComplete, 20, 7, 900);
        let mut cursors = Vec::new();
        let (events, dropped) = r.tail_all(&mut cursors);
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.tsc).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(cursors, vec![1, 1, 1]);
        r.emit(0, EventKind::Reclaim, 40, 0x1000, 0x2000);
        let (events, _) = r.tail_all(&mut cursors);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Reclaim);
        assert_eq!(cursors, vec![2, 1, 1]);
    }
}
