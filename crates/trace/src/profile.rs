//! covirt-prof: always-on cycle accounting with per-enclave phase
//! attribution.
//!
//! The flight recorder answers *what happened*; this module answers
//! **where every cycle went**. Each core runs a phase state machine
//! ([`Phase`]) whose transitions are TSC-delimited at the existing
//! hot-path boundaries (guest execution, exit dispatch, command harvest,
//! region-resolve misses, safe-point servicing). Because the simulated
//! TSC is exact, accounting is exact too: the per-core phase totals
//! telescope, so
//!
//! ```text
//!   sum over phases(cycles) == finish_tsc - begin_tsc      (conservation)
//! ```
//!
//! holds by construction on every core, and the `figures profile` CI gate
//! verifies it to 1% so a future missed boundary or double attribution is
//! caught, not silently absorbed.
//!
//! Layout mirrors the recorder: one shard per lane (core lanes plus the
//! controller lane), each shard a small enclave-slot table of per-phase
//! atomic cycle counters. The hot paths pay **one plain-bool branch when
//! the profiler is off** — the [`PhaseTracker`] caches enabled-ness at
//! `begin`, so a disabled transition is a single predictable-untaken
//! branch, no atomic load, no RDTSC.
//!
//! Controller-side costs that execute on arbitrary threads (shootdown
//! completion waits, remediation throttle intervals) cannot join a
//! per-core timeline without breaking conservation; they are attributed
//! per enclave through the **overlay** ([`PhaseProfiler::attribute`]),
//! reported alongside the per-core totals but excluded from the
//! conservation check.
//!
//! A per-lane sliding-window ring ([`PhaseProfiler::tail_windows`])
//! exposes the time series live — fixed windows of per-phase cycle
//! shares plus p50/p99 phase dwell — using the same seqlock-and-cursor
//! tailing protocol the recorder uses, so the remediation pump can
//! consume it with the cursor discipline it already has.

use crate::metrics::HistSnapshot;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Execution phases a core (or the control plane, via the overlay) can
/// spend cycles in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Guest software executing (reads, writes, compute).
    GuestExec = 0,
    /// Hypervisor root mode: VM-exit dispatch and handling.
    RootExit = 1,
    /// Draining + executing the command queue (doorbell harvest or the
    /// command portion of an NMI exit).
    CmdHarvest = 2,
    /// Slow-path translation: walks and region-resolve misses.
    RegionResolve = 3,
    /// Waiting on broadcast shootdown completions (overlay: attributed
    /// to the enclave whose reclaim forced the wait).
    ShootdownWait = 4,
    /// Enclave throttled by the remediation policy (overlay: wall time
    /// between throttle and unthrottle/quarantine).
    Throttled = 5,
    /// Safe-point servicing not otherwise attributed (timer poll, IRR
    /// scan, doorbell check on the no-work path).
    SafePoint = 6,
    /// Core parked (terminated enclave) or trailing time at finish.
    Idle = 7,
}

/// Number of phases (array dimension for per-slot counters).
pub const NUM_PHASES: usize = 8;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::GuestExec,
        Phase::RootExit,
        Phase::CmdHarvest,
        Phase::RegionResolve,
        Phase::ShootdownWait,
        Phase::Throttled,
        Phase::SafePoint,
        Phase::Idle,
    ];

    /// Stable wire/display name (folded stacks, counter tracks, tables).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::GuestExec => "guest_exec",
            Phase::RootExit => "root_exit",
            Phase::CmdHarvest => "cmd_harvest",
            Phase::RegionResolve => "region_resolve",
            Phase::ShootdownWait => "shootdown_wait",
            Phase::Throttled => "throttled",
            Phase::SafePoint => "safe_point",
            Phase::Idle => "idle",
        }
    }
}

/// Enclave slots per lane shard. A core serves one enclave (plus
/// untagged work), the overlay serves every enclave on the node; the
/// last slot aggregates overflow so attribution never fails.
const SLOTS: usize = 8;

/// Sealed windows retained per lane ring (power of two).
const WINDOW_SLOTS: usize = 64;

/// Default window length in cycles (~0.4 ms at the default 2.4 GHz
/// simulated clock) — long enough to hold many dwells, short enough
/// that a remediation pump sees phase-mix changes quickly.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1 << 20;

/// Dwell histogram buckets (log2 of cycles; bucket 47 covers > 2^46
/// cycles ≈ 8 hours at 2.4 GHz, far beyond any dwell).
const DWELL_BUCKETS: usize = 48;

/// One sealed window of a lane's time series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Window index: `tsc / window_cycles` of the cycles it covers.
    pub index: u64,
    /// Cycles accumulated per phase within the window.
    pub phase_cycles: [u64; NUM_PHASES],
    /// p50 of phase dwell (cycles, log2-bucket upper bound) per phase.
    pub dwell_p50: [u64; NUM_PHASES],
    /// p99 of phase dwell (cycles, log2-bucket upper bound) per phase.
    pub dwell_p99: [u64; NUM_PHASES],
}

impl WindowSnapshot {
    /// Total cycles accounted in this window.
    pub fn total(&self) -> u64 {
        self.phase_cycles.iter().sum()
    }

    /// Fraction of the window's accounted cycles spent in `phase`.
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.phase_cycles[phase as usize] as f64 / total as f64
        }
    }
}

/// One ring slot holding a sealed window, protected by the recorder's
/// seqlock protocol: `2*pos + 1` while the seal is in flight, `2*pos + 2`
/// once committed (`pos` = seal-order stream index). A reader observing
/// an odd or moved sequence discards the slot — torn windows are
/// detected, never returned.
struct WindowSlot {
    seq: AtomicU64,
    index: AtomicU64,
    phase_cycles: [AtomicU64; NUM_PHASES],
    dwell_p50: [AtomicU64; NUM_PHASES],
    dwell_p99: [AtomicU64; NUM_PHASES],
}

impl WindowSlot {
    fn new() -> WindowSlot {
        WindowSlot {
            seq: AtomicU64::new(0),
            index: AtomicU64::new(0),
            phase_cycles: std::array::from_fn(|_| AtomicU64::new(0)),
            dwell_p50: std::array::from_fn(|_| AtomicU64::new(0)),
            dwell_p99: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Writer-private accumulator for the window currently being filled.
/// Lives in the [`PhaseTracker`] so the hot path touches no atomics
/// beyond the per-phase totals.
struct WindowAcc {
    index: u64,
    phase_cycles: [u64; NUM_PHASES],
    /// Per-phase log2 dwell counts (compact; quantiles computed at seal).
    dwell: [[u32; DWELL_BUCKETS]; NUM_PHASES],
    dirty: bool,
}

impl WindowAcc {
    fn new() -> WindowAcc {
        WindowAcc {
            index: 0,
            phase_cycles: [0; NUM_PHASES],
            dwell: [[0; DWELL_BUCKETS]; NUM_PHASES],
            dirty: false,
        }
    }

    fn reset(&mut self, index: u64) {
        self.index = index;
        self.phase_cycles = [0; NUM_PHASES];
        self.dwell = [[0; DWELL_BUCKETS]; NUM_PHASES];
        self.dirty = false;
    }

    fn quantile(counts: &[u32; DWELL_BUCKETS], q: f64) -> u64 {
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c as u64;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        1u64 << (DWELL_BUCKETS - 1)
    }
}

fn dwell_bucket(cycles: u64) -> usize {
    ((64 - cycles.leading_zeros()) as usize).min(DWELL_BUCKETS - 1)
}

/// One lane's shard: enclave-slot table of per-phase cycle totals, the
/// conservation pair (wall vs accounted), per-phase dwell histograms,
/// and the sealed-window ring.
struct LaneShard {
    /// Slot tags: enclave id + 1; 0 = free; the last slot aggregates
    /// overflow under its first claimant's tag.
    tags: [AtomicU64; SLOTS],
    cycles: [[AtomicU64; NUM_PHASES]; SLOTS],
    /// Sum of `finish_tsc - begin_tsc` over tracker sessions.
    wall: AtomicU64,
    /// Sum of all phase deltas recorded by the tracker (conservation
    /// counterpart of `wall`; overlay attribution bypasses this).
    accounted: AtomicU64,
    /// Per-phase dwell (contiguous occupancy length, cycles), log2.
    dwell: [[AtomicU64; DWELL_BUCKETS]; NUM_PHASES],
    /// Sealed windows, in seal order.
    windows: Vec<WindowSlot>,
    /// Next window stream index to seal (== windows sealed so far).
    window_next: AtomicU64,
}

impl LaneShard {
    fn new() -> LaneShard {
        LaneShard {
            tags: std::array::from_fn(|_| AtomicU64::new(0)),
            cycles: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            wall: AtomicU64::new(0),
            accounted: AtomicU64::new(0),
            dwell: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            windows: (0..WINDOW_SLOTS).map(|_| WindowSlot::new()).collect(),
            window_next: AtomicU64::new(0),
        }
    }

    /// The slot for `tag` (enclave id + 1; 0 = untagged), claiming a
    /// free one on first use. When the table is full everything else
    /// aggregates into the last slot.
    fn slot_for(&self, tag: u64) -> usize {
        for (i, t) in self.tags.iter().enumerate() {
            let cur = t.load(Ordering::Relaxed);
            if cur == tag {
                return i;
            }
            if cur == 0
                && t.compare_exchange(0, tag, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return i;
            }
        }
        SLOTS - 1
    }

    /// Seal a writer-private window accumulator into the ring.
    fn seal(&self, acc: &WindowAcc) {
        let pos = self.window_next.load(Ordering::Relaxed);
        let slot = &self.windows[(pos as usize) & (WINDOW_SLOTS - 1)];
        slot.seq.store(pos * 2 + 1, Ordering::Release);
        fence(Ordering::Release);
        slot.index.store(acc.index, Ordering::Relaxed);
        for p in 0..NUM_PHASES {
            slot.phase_cycles[p].store(acc.phase_cycles[p], Ordering::Relaxed);
            slot.dwell_p50[p].store(WindowAcc::quantile(&acc.dwell[p], 0.5), Ordering::Relaxed);
            slot.dwell_p99[p].store(WindowAcc::quantile(&acc.dwell[p], 0.99), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(pos * 2 + 2, Ordering::Release);
        self.window_next.store(pos + 1, Ordering::Release);
    }

    /// Tail sealed windows from `cursor` (seal-order stream index):
    /// `(windows, next_cursor, dropped_since)` — same strict-prefix
    /// cursor protocol as the recorder's event tailing.
    fn tail_windows(&self, cursor: u64) -> (Vec<WindowSnapshot>, u64, u64) {
        let cap = WINDOW_SLOTS as u64;
        let next = self.window_next.load(Ordering::Acquire);
        if next <= cursor {
            return (Vec::new(), cursor, 0);
        }
        let start = cursor.max(next.saturating_sub(cap));
        let mut dropped = start - cursor;
        let mut out = Vec::with_capacity((next - start) as usize);
        let mut pos = start;
        while pos < next {
            let want = pos * 2 + 2;
            let slot = &self.windows[(pos as usize) & (WINDOW_SLOTS - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 < want {
                break; // seal in flight: stop, stay a strict prefix
            }
            if s1 > want {
                dropped += 1; // lapped after the `next` load
                pos += 1;
                continue;
            }
            let mut snap = WindowSnapshot {
                index: slot.index.load(Ordering::Relaxed),
                phase_cycles: [0; NUM_PHASES],
                dwell_p50: [0; NUM_PHASES],
                dwell_p99: [0; NUM_PHASES],
            };
            for p in 0..NUM_PHASES {
                snap.phase_cycles[p] = slot.phase_cycles[p].load(Ordering::Relaxed);
                snap.dwell_p50[p] = slot.dwell_p50[p].load(Ordering::Relaxed);
                snap.dwell_p99[p] = slot.dwell_p99[p].load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                dropped += 1; // overwritten mid-read — the window is gone
                pos += 1;
                continue;
            }
            out.push(snap);
            pos += 1;
        }
        (out, pos, dropped)
    }
}

/// Per-enclave phase cycle totals (one row of the breakdown table).
#[derive(Clone, Debug)]
pub struct EnclavePhases {
    /// The enclave (None = untagged / native work).
    pub enclave: Option<u64>,
    /// Cycles per phase.
    pub cycles: [u64; NUM_PHASES],
}

impl EnclavePhases {
    /// Total cycles across phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

/// One lane's profile: conservation pair plus per-enclave breakdown.
#[derive(Clone, Debug)]
pub struct LaneProfile {
    /// Lane (core index; the last lane is the controller's by the
    /// recorder's convention).
    pub lane: usize,
    /// Wall cycles between `begin` and `finish` (summed over sessions).
    pub wall: u64,
    /// Cycles the phase state machine attributed.
    pub accounted: u64,
    /// Per-enclave phase totals on this lane.
    pub enclaves: Vec<EnclavePhases>,
    /// Per-phase dwell distributions (cycles).
    pub dwell: Vec<HistSnapshot>,
}

impl LaneProfile {
    /// Relative conservation error `|wall - accounted| / wall`
    /// (0 for an idle lane that never began).
    pub fn conservation_error(&self) -> f64 {
        if self.wall == 0 {
            return 0.0;
        }
        (self.wall as f64 - self.accounted as f64).abs() / self.wall as f64
    }
}

/// Point-in-time profile across all lanes plus the overlay.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Per-lane (per-core) profiles, lane order.
    pub lanes: Vec<LaneProfile>,
    /// Controller-side per-enclave attribution (shootdown waits,
    /// throttle intervals) — outside the per-core conservation sums.
    pub overlay: Vec<EnclavePhases>,
}

impl ProfileSnapshot {
    /// Per-enclave totals merged across lanes *and* the overlay —
    /// the rows of the `figures profile` breakdown table.
    pub fn by_enclave(&self) -> Vec<EnclavePhases> {
        let mut merged: Vec<EnclavePhases> = Vec::new();
        let mut add = |e: &EnclavePhases| {
            if e.total() == 0 {
                return;
            }
            match merged.iter_mut().find(|m| m.enclave == e.enclave) {
                Some(m) => {
                    for p in 0..NUM_PHASES {
                        m.cycles[p] += e.cycles[p];
                    }
                }
                None => merged.push(e.clone()),
            }
        };
        for lane in &self.lanes {
            for e in &lane.enclaves {
                add(e);
            }
        }
        for e in &self.overlay {
            add(e);
        }
        merged.sort_by_key(|e| e.enclave);
        merged
    }
}

/// The profiler: per-lane shards of per-enclave × per-phase cycle
/// totals, a controller overlay, and per-lane sliding-window rings.
/// Starts disabled; when off the only cost at an emit site is the
/// tracker's cached-bool branch.
pub struct PhaseProfiler {
    enabled: AtomicBool,
    window_cycles: AtomicU64,
    lanes: Vec<LaneShard>,
    overlay: LaneShard,
}

impl PhaseProfiler {
    /// A profiler sharded over `lanes` (match the recorder's lane
    /// count: cores + controller). Profiling starts disabled.
    pub fn new(lanes: usize) -> Arc<PhaseProfiler> {
        Arc::new(PhaseProfiler {
            enabled: AtomicBool::new(false),
            window_cycles: AtomicU64::new(DEFAULT_WINDOW_CYCLES),
            lanes: (0..lanes.max(1)).map(|_| LaneShard::new()).collect(),
            overlay: LaneShard::new(),
        })
    }

    /// Whether profiling is on. Trackers sample this at `begin`; the
    /// per-transition gate is their cached bool.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn profiling on or off. Takes effect at each tracker's next
    /// `begin`.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Window length in cycles for the time-series rings.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles.load(Ordering::Relaxed).max(1)
    }

    /// Set the window length (cycles; clamped to >= 1). Affects windows
    /// sealed after the call.
    pub fn set_window_cycles(&self, cycles: u64) {
        self.window_cycles.store(cycles.max(1), Ordering::Relaxed);
    }

    #[inline]
    fn shard(&self, lane: u32) -> &LaneShard {
        &self.lanes[(lane as usize).min(self.lanes.len() - 1)]
    }

    /// Attribute `cycles` of `phase` to `enclave` on the controller
    /// overlay — for control-plane costs (shootdown completion waits,
    /// throttle intervals) that run on arbitrary threads and therefore
    /// sit outside every per-core conservation sum. Gated on the
    /// profiler flag.
    pub fn attribute(&self, enclave: u64, phase: Phase, cycles: u64) {
        if !self.enabled() || cycles == 0 {
            return;
        }
        let slot = self.overlay.slot_for(enclave + 1);
        self.overlay.cycles[slot][phase as usize].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Live-tail one lane's sealed windows from a cursor:
    /// `(windows, next_cursor, dropped_since)` — the recorder's tailing
    /// contract (strict prefix, lapped windows counted as dropped).
    pub fn tail_windows(&self, lane: u32, cursor: u64) -> (Vec<WindowSnapshot>, u64, u64) {
        self.lanes
            .get(lane as usize)
            .map(|l| l.tail_windows(cursor))
            .unwrap_or((Vec::new(), cursor, 0))
    }

    fn shard_enclaves(shard: &LaneShard) -> Vec<EnclavePhases> {
        let mut out = Vec::new();
        for (i, t) in shard.tags.iter().enumerate() {
            let tag = t.load(Ordering::Relaxed);
            let mut cycles = [0u64; NUM_PHASES];
            let mut any = false;
            for (p, slot) in cycles.iter_mut().enumerate() {
                *slot = shard.cycles[i][p].load(Ordering::Relaxed);
                any |= *slot != 0;
            }
            if tag == 0 && !any {
                continue;
            }
            out.push(EnclavePhases {
                enclave: (tag != 0).then(|| tag - 1),
                cycles,
            });
        }
        out
    }

    /// Point-in-time profile across all lanes plus the overlay.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let lanes = self
            .lanes
            .iter()
            .enumerate()
            .map(|(lane, shard)| {
                let dwell = (0..NUM_PHASES)
                    .map(|p| {
                        let mut snap = HistSnapshot::default();
                        for (b, c) in shard.dwell[p].iter().enumerate() {
                            let n = c.load(Ordering::Relaxed);
                            snap.buckets[b] += n;
                            snap.count += n;
                        }
                        snap
                    })
                    .collect();
                LaneProfile {
                    lane,
                    wall: shard.wall.load(Ordering::Relaxed),
                    accounted: shard.accounted.load(Ordering::Relaxed),
                    enclaves: Self::shard_enclaves(shard),
                    dwell,
                }
            })
            .collect();
        ProfileSnapshot {
            lanes,
            overlay: Self::shard_enclaves(&self.overlay),
        }
    }
}

/// Per-core handle driving the phase state machine. One per `GuestCore`
/// (the thread logically owning the lane); transitions are
/// single-threaded by construction, the shard atomics exist for
/// concurrent *readers* (snapshot, window tailing).
pub struct PhaseTracker {
    prof: Arc<PhaseProfiler>,
    lane: u32,
    /// Enclave tag (id + 1; 0 = untagged), resolved to a shard slot.
    slot: usize,
    tag: u64,
    /// Cached at `begin`: the only thing a transition checks when the
    /// profiler is off.
    on: bool,
    phase: Phase,
    /// When the current phase delta started (last transition).
    phase_start: u64,
    /// When the current *contiguous occupancy* of `phase` started
    /// (same-phase transitions extend it; dwell is sampled on change).
    occupancy_start: u64,
    begin_tsc: u64,
    window: WindowAcc,
}

impl PhaseTracker {
    /// A tracker for `lane` on `prof`. Starts off; call
    /// [`PhaseTracker::begin`] to arm it.
    pub fn new(prof: Arc<PhaseProfiler>, lane: u32) -> PhaseTracker {
        PhaseTracker {
            prof,
            lane,
            slot: 0,
            tag: 0,
            on: false,
            phase: Phase::Idle,
            phase_start: 0,
            occupancy_start: 0,
            begin_tsc: 0,
            window: WindowAcc::new(),
        }
    }

    /// Attribute this tracker's cycles to `enclave` (claims a shard
    /// slot). Call before `begin`.
    pub fn set_enclave(&mut self, enclave: u64) {
        self.tag = enclave + 1;
    }

    /// Whether the tracker is armed (profiler was enabled at `begin`).
    #[inline]
    pub fn on(&self) -> bool {
        self.on
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Arm the tracker at `tsc`, entering [`Phase::GuestExec`]. Samples
    /// the profiler flag once — a session that begins off stays off (and
    /// free) until the next `begin`.
    pub fn begin(&mut self, tsc: u64) {
        self.on = self.prof.enabled();
        if !self.on {
            return;
        }
        self.slot = self.prof.shard(self.lane).slot_for(self.tag);
        self.phase = Phase::GuestExec;
        self.phase_start = tsc;
        self.occupancy_start = tsc;
        self.begin_tsc = tsc;
        self.window.reset(tsc / self.prof.window_cycles());
    }

    /// Move the state machine to `phase` at `tsc`, attributing the
    /// elapsed delta to the outgoing phase. No-op (one branch) when off.
    #[inline]
    pub fn transition(&mut self, phase: Phase, tsc: u64) {
        if !self.on {
            return;
        }
        self.advance(phase, tsc);
    }

    /// [`PhaseTracker::transition`] with a lazily-taken timestamp, so
    /// the off path skips the clock read too.
    #[inline]
    pub fn transition_now(&mut self, phase: Phase, now: impl FnOnce() -> u64) {
        if !self.on {
            return;
        }
        self.advance(phase, now());
    }

    fn advance(&mut self, phase: Phase, tsc: u64) {
        let delta = tsc.saturating_sub(self.phase_start);
        let out = self.phase as usize;
        let shard = self.prof.shard(self.lane);
        if delta > 0 {
            shard.cycles[self.slot][out].fetch_add(delta, Ordering::Relaxed);
            shard.accounted.fetch_add(delta, Ordering::Relaxed);
            // Window accounting: the delta lands in the window of its
            // *end* timestamp; a boundary crossing seals the previous
            // window first so readers see a dense seal-order stream.
            let idx = tsc / self.prof.window_cycles();
            if idx != self.window.index {
                if self.window.dirty {
                    shard.seal(&self.window);
                }
                self.window.reset(idx);
            }
            self.window.phase_cycles[out] += delta;
            self.window.dirty = true;
        }
        if phase as usize != out {
            // Occupancy of `out` ends here: sample its dwell.
            let dwell = tsc.saturating_sub(self.occupancy_start);
            let b = dwell_bucket(dwell);
            shard.dwell[out][b].fetch_add(1, Ordering::Relaxed);
            self.window.dwell[out][b] = self.window.dwell[out][b].saturating_add(1);
            self.window.dirty = true;
            self.occupancy_start = tsc;
        }
        self.phase = phase;
        self.phase_start = tsc;
    }

    /// Disarm at `tsc`: attribute the trailing delta to the current
    /// phase, seal the partial window, and add `tsc - begin_tsc` to the
    /// lane's wall total. Conservation (`wall == accounted`) holds
    /// exactly when every session is bracketed begin/finish.
    pub fn finish(&mut self, tsc: u64) {
        if !self.on {
            return;
        }
        self.advance(Phase::Idle, tsc);
        if self.window.dirty {
            self.prof.shard(self.lane).seal(&self.window);
            self.window.reset(self.window.index + 1);
        }
        self.prof
            .shard(self.lane)
            .wall
            .fetch_add(tsc.saturating_sub(self.begin_tsc), Ordering::Relaxed);
        self.on = false;
    }
}

impl std::fmt::Debug for PhaseTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PhaseTracker(lane {}, {}, {})",
            self.lane,
            self.phase.name(),
            if self.on { "on" } else { "off" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler(lanes: usize) -> Arc<PhaseProfiler> {
        let p = PhaseProfiler::new(lanes);
        p.set_enabled(true);
        p
    }

    #[test]
    fn phase_name_table_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "ALL order must match discriminants");
            let n = p.name();
            assert!(seen.insert(n), "duplicate phase name {n}");
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        assert_eq!(Phase::ALL.len(), NUM_PHASES);
    }

    #[test]
    fn conservation_is_exact_for_a_bracketed_session() {
        let prof = profiler(2);
        let mut t = PhaseTracker::new(Arc::clone(&prof), 0);
        t.set_enclave(3);
        t.begin(1_000);
        t.transition(Phase::RootExit, 1_700);
        t.transition(Phase::CmdHarvest, 2_000);
        t.transition(Phase::GuestExec, 2_600);
        t.transition(Phase::RegionResolve, 9_000);
        t.transition(Phase::GuestExec, 9_400);
        t.finish(12_345);
        let snap = prof.snapshot();
        let lane = &snap.lanes[0];
        assert_eq!(lane.wall, 12_345 - 1_000);
        assert_eq!(lane.accounted, lane.wall, "telescoping must be exact");
        assert_eq!(lane.conservation_error(), 0.0);
        let e = &lane.enclaves[0];
        assert_eq!(e.enclave, Some(3));
        assert_eq!(e.cycles[Phase::GuestExec as usize], 700 + 6_400 + 2_945);
        assert_eq!(e.cycles[Phase::RootExit as usize], 300);
        assert_eq!(e.cycles[Phase::CmdHarvest as usize], 600);
        assert_eq!(e.cycles[Phase::RegionResolve as usize], 400);
        assert_eq!(e.total(), lane.accounted);
    }

    #[test]
    fn disabled_tracker_records_nothing_and_stays_off_mid_session() {
        let prof = PhaseProfiler::new(1); // disabled
        let mut t = PhaseTracker::new(Arc::clone(&prof), 0);
        t.begin(100);
        prof.set_enabled(true); // mid-session enable must not arm it
        t.transition(Phase::RootExit, 200);
        t.finish(300);
        let snap = prof.snapshot();
        assert_eq!(snap.lanes[0].wall, 0);
        assert_eq!(snap.lanes[0].accounted, 0);
        assert!(snap.lanes[0].enclaves.is_empty());
        // The next begin picks the flag up.
        t.begin(400);
        assert!(t.on());
    }

    #[test]
    fn same_phase_transitions_merge_occupancy_dwell() {
        let prof = profiler(1);
        let mut t = PhaseTracker::new(Arc::clone(&prof), 0);
        t.begin(0);
        // Three same-phase ticks then a change: one GuestExec dwell of
        // 3000 cycles, not three of 1000.
        t.transition(Phase::GuestExec, 1_000);
        t.transition(Phase::GuestExec, 2_000);
        t.transition(Phase::RootExit, 3_000);
        t.finish(3_100);
        let snap = prof.snapshot();
        let exec_dwell = &snap.lanes[0].dwell[Phase::GuestExec as usize];
        assert_eq!(exec_dwell.count, 1);
        assert_eq!(exec_dwell.quantile(0.5), 4096); // 3000 -> bucket [2048, 4096)
    }

    #[test]
    fn overlay_attribution_is_per_enclave_and_off_conservation() {
        let prof = profiler(2);
        prof.attribute(7, Phase::ShootdownWait, 5_000);
        prof.attribute(7, Phase::Throttled, 2_000);
        prof.attribute(9, Phase::ShootdownWait, 100);
        prof.attribute(9, Phase::GuestExec, 0); // zero: dropped
        let snap = prof.snapshot();
        assert!(snap.lanes.iter().all(|l| l.accounted == 0));
        assert_eq!(snap.overlay.len(), 2);
        let by = snap.by_enclave();
        let e7 = by.iter().find(|e| e.enclave == Some(7)).unwrap();
        assert_eq!(e7.cycles[Phase::ShootdownWait as usize], 5_000);
        assert_eq!(e7.cycles[Phase::Throttled as usize], 2_000);
        let e9 = by.iter().find(|e| e.enclave == Some(9)).unwrap();
        assert_eq!(e9.total(), 100);
        // Disabled profiler drops attribution.
        prof.set_enabled(false);
        prof.attribute(7, Phase::Throttled, 999);
        assert_eq!(
            prof.snapshot().by_enclave()[0].cycles[Phase::Throttled as usize],
            2_000
        );
    }

    #[test]
    fn window_rollover_seals_dense_stream_with_indices() {
        let prof = profiler(1);
        prof.set_window_cycles(1_000);
        let mut t = PhaseTracker::new(Arc::clone(&prof), 0);
        t.begin(0);
        t.transition(Phase::RootExit, 500); // window 0
        t.transition(Phase::GuestExec, 900); // window 0
        t.transition(Phase::RootExit, 1_200); // crosses into window 1
        t.transition(Phase::GuestExec, 5_500); // skips windows 2..4
        t.finish(5_600);
        let (wins, next, dropped) = prof.tail_windows(0, 0);
        assert_eq!(dropped, 0);
        assert_eq!(next, wins.len() as u64);
        // Seal order is dense even though window indices have gaps.
        assert_eq!(
            wins.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![0, 1, 5]
        );
        // Deltas belong to the *outgoing* phase: begin enters GuestExec,
        // so the 0..500 delta is guest time, 500..900 is exit time.
        assert_eq!(wins[0].phase_cycles[Phase::GuestExec as usize], 500);
        assert_eq!(wins[0].phase_cycles[Phase::RootExit as usize], 400);
        // The delta ending at 1200 lands wholly in window 1.
        assert_eq!(wins[1].phase_cycles[Phase::GuestExec as usize], 300);
        assert_eq!(wins[2].phase_cycles[Phase::RootExit as usize], 4_300);
        assert_eq!(wins[2].phase_cycles[Phase::GuestExec as usize], 100);
        // Shares sum to 1 for a non-empty window.
        let s: f64 = Phase::ALL.iter().map(|&p| wins[0].share(p)).sum();
        assert!((s - 1.0).abs() < 1e-9);
        // Cursor protocol: nothing new after the tail.
        let (more, next2, d2) = prof.tail_windows(0, next);
        assert!(more.is_empty());
        assert_eq!(next2, next);
        assert_eq!(d2, 0);
    }

    #[test]
    fn window_ring_laps_count_dropped() {
        let prof = profiler(1);
        prof.set_window_cycles(100);
        let mut t = PhaseTracker::new(Arc::clone(&prof), 0);
        t.begin(0);
        let total = (WINDOW_SLOTS as u64) + 17;
        for i in 0..total {
            // One delta per window: each seal advances the stream.
            t.transition(Phase::RootExit, i * 100 + 50);
            t.transition(Phase::GuestExec, i * 100 + 90);
        }
        t.finish(total * 100 + 10);
        let (wins, next, dropped) = prof.tail_windows(0, 0);
        assert_eq!(wins.len(), WINDOW_SLOTS);
        assert_eq!(dropped, next - WINDOW_SLOTS as u64);
        assert!(dropped >= 17);
        // The survivors are the newest windows, in order.
        for pair in wins.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }

    #[test]
    fn window_read_is_tear_free_while_writer_advances() {
        let prof = profiler(1);
        prof.set_window_cycles(1_000);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let prof = Arc::clone(&prof);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut t = PhaseTracker::new(prof, 0);
                t.begin(0);
                let mut tsc = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Fill each window with a recognizable pattern: every
                    // phase gets exactly `index + 1` cycles, so a torn read
                    // mixing two windows shows unequal entries.
                    let idx = tsc / 1_000;
                    let unit = (idx % 100) + 1;
                    if unit * (NUM_PHASES as u64) <= 1_000 {
                        for &p in Phase::ALL.iter() {
                            tsc += unit;
                            t.transition(p, tsc);
                        }
                    }
                    tsc = (idx + 1) * 1_000; // jump to the next window
                    t.transition(Phase::GuestExec, tsc);
                    // Strip the boundary-crossing delta off phase 0 below.
                }
                t.finish(tsc);
            })
        };
        let mut cursor = 0u64;
        let mut seen = 0u64;
        while seen < 500 {
            let (wins, next, _) = prof.tail_windows(0, cursor);
            cursor = next;
            for w in &wins {
                // The mid-cycle phases must all hold the same unit value;
                // a torn read straddling two seals would disagree.
                // (GuestExec absorbs an extra unit at the cycle start and
                // Idle absorbs the previous window's boundary jump, so
                // both are excluded from the equality check.)
                let unit = (w.index % 100) + 1;
                for &p in Phase::ALL.iter() {
                    if p == Phase::GuestExec || p == Phase::Idle {
                        continue;
                    }
                    assert_eq!(
                        w.phase_cycles[p as usize],
                        unit,
                        "torn window at index {} phase {}",
                        w.index,
                        p.name()
                    );
                }
            }
            seen += wins.len() as u64;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn by_enclave_merges_lanes_and_overlay() {
        let prof = profiler(3);
        let mut a = PhaseTracker::new(Arc::clone(&prof), 0);
        a.set_enclave(1);
        a.begin(0);
        a.finish(1_000);
        let mut b = PhaseTracker::new(Arc::clone(&prof), 1);
        b.set_enclave(1);
        b.begin(0);
        b.finish(500);
        prof.attribute(1, Phase::ShootdownWait, 250);
        let by = prof.snapshot().by_enclave();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].total(), 1_750);
        assert_eq!(by[0].cycles[Phase::ShootdownWait as usize], 250);
    }

    #[test]
    fn slot_overflow_aggregates_instead_of_failing() {
        let prof = profiler(1);
        for e in 0..(SLOTS as u64 + 4) {
            prof.attribute(e, Phase::Throttled, 10);
        }
        let snap = prof.snapshot();
        let total: u64 = snap
            .overlay
            .iter()
            .map(|e| e.cycles[Phase::Throttled as usize])
            .sum();
        assert_eq!(total, (SLOTS as u64 + 4) * 10, "no attribution lost");
    }
}
