//! Unified metrics registry: per-lane sharded counters plus log-bucketed
//! latency histograms, behind typed enums so every producer and every
//! exporter agrees on names.
//!
//! The registry replaces the scattered copies Covirt grew organically —
//! `CoreCounters` in `exec`, `TlbStats` in `simhw::tlb`, exit tables in
//! `simhw::vmcs`, `snapshot_swaps` in `simhw::memory` — with one sink.
//! Producers either `add` deltas or `set` absolutes (cores that keep
//! their own cheap non-atomic counters publish wholesale), so hot paths
//! keep their current cost.

use std::sync::atomic::{AtomicU64, Ordering};

/// Every counter the registry tracks. Grouped by origin subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    // GuestCore memory path.
    Reads,
    Writes,
    Walks,
    WalkLoads,
    WalkCacheHits,
    WalkCacheMisses,
    ResolveHits,
    ResolveMisses,
    // Interrupts.
    IpisSent,
    TimerIrqs,
    IpiIrqs,
    PostedHarvested,
    Polls,
    // TLB.
    TlbHits,
    TlbMisses,
    TlbFullFlushes,
    TlbPageFlushes,
    TlbRangeFlushes,
    // Control plane.
    Exits,
    Commands,
    CmdPosts,
    Shootdowns,
    SnapshotPublishes,
    CtrlMsgs,
    /// Command doorbells posted into posted-interrupt descriptors.
    CmdDoorbells,
    /// Commands drained in guest mode via doorbell harvest (no VM exit).
    CmdHarvested,
    /// Doorbell deliveries that timed out and escalated to an NMI kick.
    NmiEscalations,
    /// Retired region snapshots freed after their epoch grace period.
    RetiredFreed,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 28] = [
        Counter::Reads,
        Counter::Writes,
        Counter::Walks,
        Counter::WalkLoads,
        Counter::WalkCacheHits,
        Counter::WalkCacheMisses,
        Counter::ResolveHits,
        Counter::ResolveMisses,
        Counter::IpisSent,
        Counter::TimerIrqs,
        Counter::IpiIrqs,
        Counter::PostedHarvested,
        Counter::Polls,
        Counter::TlbHits,
        Counter::TlbMisses,
        Counter::TlbFullFlushes,
        Counter::TlbPageFlushes,
        Counter::TlbRangeFlushes,
        Counter::Exits,
        Counter::Commands,
        Counter::CmdPosts,
        Counter::Shootdowns,
        Counter::SnapshotPublishes,
        Counter::CtrlMsgs,
        Counter::CmdDoorbells,
        Counter::CmdHarvested,
        Counter::NmiEscalations,
        Counter::RetiredFreed,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Reads => "reads",
            Counter::Writes => "writes",
            Counter::Walks => "walks",
            Counter::WalkLoads => "walk_loads",
            Counter::WalkCacheHits => "walk_cache_hits",
            Counter::WalkCacheMisses => "walk_cache_misses",
            Counter::ResolveHits => "resolve_hits",
            Counter::ResolveMisses => "resolve_misses",
            Counter::IpisSent => "ipis_sent",
            Counter::TimerIrqs => "timer_irqs",
            Counter::IpiIrqs => "ipi_irqs",
            Counter::PostedHarvested => "posted_harvested",
            Counter::Polls => "polls",
            Counter::TlbHits => "tlb_hits",
            Counter::TlbMisses => "tlb_misses",
            Counter::TlbFullFlushes => "tlb_full_flushes",
            Counter::TlbPageFlushes => "tlb_page_flushes",
            Counter::TlbRangeFlushes => "tlb_range_flushes",
            Counter::Exits => "exits",
            Counter::Commands => "commands",
            Counter::CmdPosts => "cmd_posts",
            Counter::Shootdowns => "shootdowns",
            Counter::SnapshotPublishes => "snapshot_publishes",
            Counter::CtrlMsgs => "ctrl_msgs",
            Counter::CmdDoorbells => "cmd_doorbells",
            Counter::CmdHarvested => "cmd_harvested",
            Counter::NmiEscalations => "nmi_escalations",
            Counter::RetiredFreed => "retired_freed",
        }
    }
}

/// Latency histograms (all in nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Command post → completion acknowledged (controller-observed).
    CmdLatencyNs,
    /// Controller wait() spin time per completion.
    CmdWaitNs,
    /// Broadcast shootdown two-phase round-trip.
    ShootdownRttNs,
    /// VM exit handle time (hypervisor dispatch).
    ExitHandleNs,
    /// Slow-path translate cost on a resolve miss.
    ResolveMissNs,
}

impl Hist {
    /// Every histogram, in display order.
    pub const ALL: [Hist; 5] = [
        Hist::CmdLatencyNs,
        Hist::CmdWaitNs,
        Hist::ShootdownRttNs,
        Hist::ExitHandleNs,
        Hist::ResolveMissNs,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Hist::CmdLatencyNs => "cmd_latency_ns",
            Hist::CmdWaitNs => "cmd_wait_ns",
            Hist::ShootdownRttNs => "shootdown_rtt_ns",
            Hist::ExitHandleNs => "exit_handle_ns",
            Hist::ResolveMissNs => "resolve_miss_ns",
        }
    }
}

const BUCKETS: usize = 64;

/// Log2-bucketed histogram: value `v` lands in bucket
/// `64 - v.leading_zeros()` (bucket 0 holds zeros), i.e. bucket `i`
/// covers `[2^(i-1), 2^i)`. Fixed memory, no allocation on observe.
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn merge_into(&self, snap: &mut HistSnapshot) {
        for (i, b) in self.buckets.iter().enumerate() {
            snap.buckets[i] += b.load(Ordering::Relaxed);
        }
        snap.count += self.count.load(Ordering::Relaxed);
        snap.sum += self.sum.load(Ordering::Relaxed);
        snap.max = snap.max.max(self.max.load(Ordering::Relaxed));
    }
}

/// Point-in-time merged view of one histogram across all lanes.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub buckets: [u64; BUCKETS + 1],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Record one sample into this snapshot — for offline consumers (the
    /// audit engine) that bucket values outside the atomic registry.
    pub fn record(&mut self, v: u64) {
        self.buckets[LogHistogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Merge another snapshot (e.g. a per-lane shard) into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the q-quantile sample
    /// (`q` in [0, 1]); 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }
}

/// One lane's slice of the registry.
struct Shard {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [LogHistogram; Hist::ALL.len()],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| LogHistogram::new()),
        }
    }
}

/// Per-lane sharded counters + histograms. Lane layout matches the
/// recorder's: one shard per core plus a controller shard.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
}

impl MetricsRegistry {
    pub(crate) fn new(lanes: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..lanes.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    #[inline]
    fn shard(&self, lane: usize) -> &Shard {
        &self.shards[lane.min(self.shards.len() - 1)]
    }

    /// Add `n` to a lane's counter.
    #[inline]
    pub fn add(&self, lane: usize, c: Counter, n: u64) {
        self.shard(lane).counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Store an absolute value into a lane's counter — for producers that
    /// keep private non-atomic counters and publish wholesale.
    #[inline]
    pub fn set(&self, lane: usize, c: Counter, v: u64) {
        self.shard(lane).counters[c as usize].store(v, Ordering::Relaxed);
    }

    /// Record one histogram sample on a lane.
    #[inline]
    pub fn observe(&self, lane: usize, h: Hist, v: u64) {
        self.shard(lane).hists[h as usize].observe(v);
    }

    /// One lane's counter value.
    pub fn counter(&self, lane: usize, c: Counter) -> u64 {
        self.shard(lane).counters[c as usize].load(Ordering::Relaxed)
    }

    /// A counter summed across all lanes.
    pub fn counter_total(&self, c: Counter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// A histogram merged across all lanes.
    pub fn histogram(&self, h: Hist) -> HistSnapshot {
        let mut snap = HistSnapshot::default();
        for s in &self.shards {
            s.hists[h as usize].merge_into(&mut snap);
        }
        snap
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.shards.len()
    }

    /// Render the registry as a text report: non-zero counters per lane
    /// and in total, then histogram summaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== metrics registry ==\n");
        out.push_str(&format!("{:<20} {:>12}  per-lane\n", "counter", "total"));
        for c in Counter::ALL {
            let total = self.counter_total(c);
            if total == 0 {
                continue;
            }
            let lanes: Vec<String> = self
                .shards
                .iter()
                .map(|s| s.counters[c as usize].load(Ordering::Relaxed).to_string())
                .collect();
            out.push_str(&format!(
                "{:<20} {:>12}  [{}]\n",
                c.name(),
                total,
                lanes.join(", ")
            ));
        }
        out.push_str(&format!(
            "\n{:<18} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            "histogram (ns)", "count", "mean", "p50", "p99", "max"
        ));
        for h in Hist::ALL {
            let snap = self.histogram(h);
            if snap.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<18} {:>9} {:>12.0} {:>12} {:>12} {:>12}\n",
                h.name(),
                snap.count,
                snap.mean(),
                snap.quantile(0.5),
                snap.quantile(0.99),
                snap.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let reg = MetricsRegistry::new(2);
        for v in [100u64, 200, 300, 400, 10_000] {
            reg.observe(0, Hist::CmdLatencyNs, v);
        }
        reg.observe(1, Hist::CmdLatencyNs, 50);
        let snap = reg.histogram(Hist::CmdLatencyNs);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.max, 10_000);
        assert!((snap.mean() - (11_050.0 / 6.0)).abs() < 1e-9);
        // p50 of {50,100,200,300,400,10000} sits in the 256-bucket.
        assert_eq!(snap.quantile(0.5), 256);
        assert!(snap.quantile(1.0) >= 8192);
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_extremes_on_empty_snapshot() {
        let snap = HistSnapshot::default();
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.quantile(1.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn quantile_extremes_on_single_bucket() {
        // One sample: every quantile lands in its bucket.
        let mut snap = HistSnapshot::default();
        snap.record(5); // bucket 3, upper bound 8
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(snap.quantile(q), 8, "q={q}");
        }
        // Many samples in the same bucket behave identically.
        for _ in 0..99 {
            snap.record(5);
        }
        assert_eq!(snap.quantile(0.0), 8);
        assert_eq!(snap.quantile(1.0), 8);
    }

    #[test]
    fn quantile_q0_and_q1_hit_the_extreme_buckets() {
        let mut snap = HistSnapshot::default();
        snap.record(1); // bucket 1, upper bound 2
        snap.record(1024); // bucket 11, upper bound 2048
                           // q=0 clamps rank to the first sample, q=1 to the last.
        assert_eq!(snap.quantile(0.0), 2);
        assert_eq!(snap.quantile(1.0), 2048);
        // Out-of-range q clamps rather than panicking or wrapping.
        assert_eq!(snap.quantile(-3.0), snap.quantile(0.0));
        assert_eq!(snap.quantile(7.5), snap.quantile(1.0));
    }

    #[test]
    fn quantile_of_zero_valued_samples_is_zero() {
        let mut snap = HistSnapshot::default();
        snap.record(0); // bucket 0 reports upper bound 0
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), 0);
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn counters_shard_and_merge() {
        let reg = MetricsRegistry::new(3);
        reg.add(0, Counter::Exits, 5);
        reg.add(1, Counter::Exits, 7);
        reg.set(2, Counter::Exits, 11);
        reg.set(2, Counter::Exits, 13); // absolute overwrite, not add
        assert_eq!(reg.counter(0, Counter::Exits), 5);
        assert_eq!(reg.counter_total(Counter::Exits), 25);
        // Out-of-range lane clamps to the last shard.
        reg.add(99, Counter::Shootdowns, 1);
        assert_eq!(reg.counter(2, Counter::Shootdowns), 1);
    }

    /// Exact q-quantile of a sorted sample set (nearest-rank).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    /// The log2 buckets guarantee the estimate is the upper bound of the
    /// bucket holding the true quantile: exact <= estimate <= 2 * exact
    /// (equality on the right when the exact value is a power of two).
    fn assert_within_bucket(est: u64, exact: u64, what: &str) {
        if exact == 0 {
            assert_eq!(est, 0, "{what}: zero sample must estimate 0");
        } else {
            assert!(
                est >= exact && est <= exact.saturating_mul(2),
                "{what}: estimate {est} outside [{exact}, {}]",
                exact.saturating_mul(2)
            );
        }
    }

    #[test]
    fn percentiles_track_exact_values_on_synthetic_distributions() {
        // Uniform, geometric-ish (latency-like heavy tail), and constant.
        let uniform: Vec<u64> = (1..=10_000).collect();
        let heavy: Vec<u64> = (0..10_000)
            .map(|i| 100 + (i % 97) + if i % 100 == 0 { 1 << 20 } else { 0 })
            .collect();
        let constant: Vec<u64> = vec![4096; 1000];
        for (name, samples) in [
            ("uniform", uniform),
            ("heavy-tail", heavy),
            ("constant", constant),
        ] {
            let mut snap = HistSnapshot::default();
            for &v in &samples {
                snap.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                assert_within_bucket(
                    snap.quantile(q),
                    exact_quantile(&sorted, q),
                    &format!("{name} p{}", (q * 100.0) as u32),
                );
            }
            assert_eq!(snap.count, samples.len() as u64);
            assert_eq!(snap.max, *sorted.last().unwrap());
        }
    }

    #[test]
    fn merge_of_shards_matches_single_histogram() {
        // Record the same stream split across 4 shards vs all-in-one;
        // merged shards must be bit-identical to the single snapshot.
        let samples: Vec<u64> = (0..5_000).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = HistSnapshot::default();
        let mut shards = vec![HistSnapshot::default(); 4];
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            shards[i % 4].record(v);
        }
        let mut merged = HistSnapshot::default();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.buckets, whole.buckets);
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.sum, whole.sum);
        assert_eq!(merged.max, whole.max);
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
        // And matches the atomic registry's cross-lane merge.
        let reg = MetricsRegistry::new(4);
        for (i, &v) in samples.iter().enumerate() {
            reg.observe(i % 4, Hist::CmdLatencyNs, v);
        }
        let reg_snap = reg.histogram(Hist::CmdLatencyNs);
        assert_eq!(reg_snap.buckets, whole.buckets);
        assert_eq!(reg_snap.count, whole.count);
    }

    #[test]
    fn render_skips_zero_rows() {
        let reg = MetricsRegistry::new(1);
        reg.add(0, Counter::Commands, 3);
        reg.observe(0, Hist::ExitHandleNs, 700);
        let text = reg.render();
        assert!(text.contains("commands"));
        assert!(text.contains("exit_handle_ns"));
        assert!(!text.contains("tlb_hits"));
        assert!(!text.contains("resolve_miss_ns"));
    }
}
