//! Online protection-audit engine (`covirt-audit`).
//!
//! The flight recorder proves that events *happened*; this module proves
//! that they happened in the order the protection model requires. It
//! streams a merged event dump through three analyses:
//!
//! 1. **Causal lifecycle stitching** — reconstructs end-to-end chains
//!    keyed by region (`Grant → Reclaim → ShootdownEnd`) and by command
//!    (`CmdPost → NmiKick → CmdDrain → CmdComplete → CmdWait`), with
//!    per-stage latency breakdowns, and flags chains that never complete.
//! 2. **Invariant checkers** — streaming assertions over event order:
//!    no grant may overlap a reclaimed range whose shootdown has not
//!    completed (the frame-recycling analog of "no resolve hit after
//!    reclaim"), every posted command completes within a bound, every
//!    teardown is preceded by a fault report or an explicit shutdown
//!    message, ring-drop counters never exceed a threshold, and every
//!    fault report is surfaced as a protection violation. Each violation
//!    carries the event window around it.
//! 3. **Per-enclave attribution + SLO watchdogs** — exits, shootdown
//!    RTTs and command latencies roll up per enclave (from the
//!    enclave-tagged events) into log2 histograms; configurable budgets
//!    mark an enclave degraded when its p99 crosses them.
//!
//! ## Drop-window semantics
//!
//! Ring overflow (or a mid-stream reservation-index gap) means events
//! are missing, so *absence*-based invariants — "X never happened" —
//! cannot be asserted. When any lane dropped events the engine marks the
//! report **evidence-incomplete** and demotes absence-based findings
//! (never-completed commands, never-synced reclaims, teardown-without-
//! cause) to notes instead of violations. Presence-based findings (a
//! fault report, a grant inside a stale window, an over-bound completion
//! that *was* observed) remain violations: the events proving them are
//! in hand.

use crate::metrics::HistSnapshot;
use crate::{unpack_str, EventKind, TraceEvent};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Convert simulated-TSC cycles to nanoseconds at `hz` (split to avoid
/// overflow on large cycle counts).
pub fn cycles_to_ns(cycles: u64, hz: u64) -> u64 {
    if hz == 0 {
        return cycles;
    }
    let secs = cycles / hz;
    let rem = cycles % hz;
    secs * 1_000_000_000 + rem * 1_000_000_000 / hz
}

/// Per-enclave p99 budgets for the SLO watchdogs (`None` disables that
/// watchdog).
#[derive(Clone, Copy, Debug, Default)]
pub struct SloBudgets {
    /// Budget for the p99 VM-exit handle time.
    pub exit_p99_ns: Option<u64>,
    /// Budget for the p99 broadcast-shootdown round-trip.
    pub shootdown_p99_ns: Option<u64>,
    /// Budget for the p99 controller command-wait time.
    pub cmd_wait_p99_ns: Option<u64>,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// A posted command must complete within this many (TSC-derived)
    /// nanoseconds of its post.
    pub cmd_bound_ns: u64,
    /// Ring drops above this count are a violation (at or below it they
    /// only mark the evidence incomplete).
    pub drop_threshold: u64,
    /// Events of context captured around each violation.
    pub window: usize,
    /// Per-enclave SLO budgets.
    pub budgets: SloBudgets,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            cmd_bound_ns: 1_000_000_000, // 1 s — generous for loaded CI hosts
            drop_threshold: 0,           // any drop is loud by default
            window: 8,
            budgets: SloBudgets::default(),
        }
    }
}

/// One region's protection lifecycle, stitched from `Grant` → `Reclaim` →
/// the enclave's next `ShootdownEnd` (reclaim epochs close many regions
/// with one shootdown, so the end event synchronizes every pending
/// reclaim of its enclave).
#[derive(Clone, Debug)]
pub struct RegionLifecycle {
    /// Owning enclave, when the emitter tagged one.
    pub enclave: Option<u64>,
    /// Region base address.
    pub start: u64,
    /// Region length in bytes.
    pub len: u64,
    /// TSC of the grant (`None` for regions mapped before the capture,
    /// e.g. the boot-time assignment).
    pub grant_tsc: Option<u64>,
    /// TSC of the reclaim (EPT unmap), if reclaimed.
    pub reclaim_tsc: Option<u64>,
    /// TSC of the shootdown completion that closed the stale window.
    pub synced_tsc: Option<u64>,
}

impl RegionLifecycle {
    /// Lifecycle state label for the report table.
    pub fn state(&self) -> &'static str {
        if self.synced_tsc.is_some() {
            "synced"
        } else if self.reclaim_tsc.is_some() {
            "stale-window"
        } else {
            "held"
        }
    }

    /// Whether the full grant → reclaim → shootdown chain completed.
    pub fn complete(&self) -> bool {
        self.grant_tsc.is_some() && self.reclaim_tsc.is_some() && self.synced_tsc.is_some()
    }
}

/// One command's lifecycle, stitched from `CmdPost` → delivery →
/// `CmdComplete` → `CmdWait`, keyed by (seq, core). Delivery is one of
/// two valid shapes: the NMI path (`NmiKick` → `CmdDrain`, the guest
/// takes a VM exit to drain) or the exitless path (`CmdDoorbell` →
/// `CmdHarvest`, the guest harvests the posted-interrupt descriptor at
/// a safe point and drains in guest mode). `NmiKick` is therefore
/// *optional*: an exitless chain with no kick is complete, and a kick
/// on a doorbell chain records a bounded-fallback escalation.
#[derive(Clone, Debug)]
pub struct CmdLifecycle {
    /// Command sequence number.
    pub seq: u64,
    /// Core the command was posted to.
    pub core: u64,
    /// Posting enclave, when tagged.
    pub enclave: Option<u64>,
    /// TSC of the post.
    pub post_tsc: u64,
    /// TSC of the first NMI kick to the core after the post. `None` on
    /// exitless chains that never escalated.
    pub nmi_tsc: Option<u64>,
    /// TSC of the doorbell post into the core's posted-interrupt
    /// descriptor, when the controller ran doorbell-first.
    pub doorbell_tsc: Option<u64>,
    /// TSC of the guest-mode harvest that drained the command without a
    /// VM exit.
    pub harvest_tsc: Option<u64>,
    /// TSC of the hypervisor's queue drain that picked the command up.
    pub drain_tsc: Option<u64>,
    /// TSC of the completion acknowledgement.
    pub complete_tsc: Option<u64>,
    /// Post → complete latency the completing hypervisor reported
    /// (event payload; 0 when the poster's recorder was off).
    pub complete_ns: u64,
    /// Controller-observed wait time, when a `CmdWait` matched.
    pub wait_ns: Option<u64>,
}

impl CmdLifecycle {
    /// Whether the command provably finished: its completion ack was
    /// observed, or a controller wait for it returned. The second case
    /// matters for drain-merged and live-tailed captures — the ring can
    /// overwrite the `CmdComplete` record while the controller-lane
    /// `CmdWait` (which can only follow the completion) survives, so the
    /// chain is complete even though `complete_tsc` is `None`.
    pub fn complete(&self) -> bool {
        self.complete_tsc.is_some() || self.wait_ns.is_some()
    }

    /// Whether the chain was delivered exitlessly: a doorbell or a
    /// guest-mode harvest was observed and no NMI kick ever was.
    pub fn exitless(&self) -> bool {
        self.nmi_tsc.is_none() && (self.doorbell_tsc.is_some() || self.harvest_tsc.is_some())
    }
}

/// The invariant a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A fault-isolation teardown was reported (`FaultReport`): the
    /// enclave attempted an access the protection layer had to contain.
    ProtectionFault,
    /// A grant overlapped a reclaimed range whose shootdown had not yet
    /// completed — the frame was recycled inside the stale-TLB window.
    UseAfterReclaim,
    /// A posted command never completed, or completed over the bound.
    CommandStall,
    /// A reclaimed range was never covered by a shootdown completion.
    UnsyncedReclaim,
    /// A teardown with no preceding fault report or shutdown message.
    OrphanTeardown,
    /// Ring-overflow drops exceeded the configured threshold.
    RingDrops,
}

impl ViolationKind {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::ProtectionFault => "protection_fault",
            ViolationKind::UseAfterReclaim => "use_after_reclaim",
            ViolationKind::CommandStall => "command_stall",
            ViolationKind::UnsyncedReclaim => "unsynced_reclaim",
            ViolationKind::OrphanTeardown => "orphan_teardown",
            ViolationKind::RingDrops => "ring_drops",
        }
    }
}

/// One invariant violation, with the event window around it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The enclave the violation is attributed to, when known.
    pub enclave: Option<u64>,
    /// TSC at (or nearest to) the violating event.
    pub tsc: u64,
    /// Human-readable description.
    pub detail: String,
    /// The events immediately preceding (and including) the trigger.
    pub window: Vec<TraceEvent>,
    /// The finding rests on an event *not* occurring (a completion or a
    /// fault report that was never seen), so it is demoted to a note when
    /// the capture dropped events — the missing event may be among them.
    /// Presence-based findings keep their proof in hand and survive.
    pub absence_based: bool,
}

/// Per-enclave attribution rollup.
#[derive(Clone, Default)]
pub struct EnclaveStats {
    /// VM exits entered.
    pub exits: u64,
    /// Exit handle times (ns).
    pub exit_ns: HistSnapshot,
    /// Broadcast-shootdown round-trips (ns).
    pub shootdown_rtt_ns: HistSnapshot,
    /// Controller command-wait times (ns).
    pub cmd_wait_ns: HistSnapshot,
    /// Post → complete command latencies (ns).
    pub cmd_latency_ns: HistSnapshot,
    /// Fault reports attributed to this enclave.
    pub faults: u64,
    /// Budgets this enclave's p99 crossed (filled by the watchdogs).
    pub degraded: Vec<String>,
}

impl EnclaveStats {
    /// Whether any SLO watchdog tripped.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// What one live-tailed batch changed — the unit of feedback a
/// remediation policy consumes (see [`AuditEngine::ingest_tail`]).
#[derive(Clone, Debug, Default)]
pub struct TailVerdict {
    /// Violations appended while ingesting this batch. Presence-based
    /// findings (fault reports, stale-window grants, over-bound
    /// completions) fire here, live; absence-based findings wait for
    /// [`AuditEngine::finish`].
    pub new_violations: Vec<Violation>,
    /// Enclaves whose p99 currently exceeds a configured SLO budget,
    /// with the budgets crossed. Recomputed (non-destructively) per
    /// batch, so an enclave drops off this list when it recovers.
    pub degraded: Vec<(u64, Vec<String>)>,
    /// Ring laps the tail reported for this batch.
    pub dropped_since: u64,
    /// Events ingested from this batch.
    pub ingested: u64,
    /// Whether the capture as a whole has lost events so far — consumers
    /// should treat absence-based findings in `new_violations` as
    /// unconfirmed when set.
    pub evidence_incomplete: bool,
}

/// The budgets an enclave's current p99s cross (empty = within SLO).
fn slo_breaches(budgets: &SloBudgets, s: &EnclaveStats) -> Vec<String> {
    let mut over = Vec::new();
    let mut check = |label: &str, p99: u64, budget: Option<u64>| {
        if let Some(b) = budget {
            if p99 > b {
                over.push(format!("{label} p99 {p99} > {b} ns"));
            }
        }
    };
    check("exit", s.exit_ns.quantile(0.99), budgets.exit_p99_ns);
    check(
        "shootdown",
        s.shootdown_rtt_ns.quantile(0.99),
        budgets.shootdown_p99_ns,
    );
    check(
        "cmd-wait",
        s.cmd_wait_ns.quantile(0.99),
        budgets.cmd_wait_p99_ns,
    );
    over
}

/// The engine's final output.
pub struct AuditReport {
    /// Stitched region lifecycles, in first-seen order.
    pub regions: Vec<RegionLifecycle>,
    /// Stitched command lifecycles, in post order.
    pub commands: Vec<CmdLifecycle>,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<Violation>,
    /// Demoted findings and informational remarks.
    pub notes: Vec<String>,
    /// Per-enclave attribution, keyed by enclave id.
    pub enclaves: BTreeMap<u64, EnclaveStats>,
    /// Whether the capture lost events (ring drops or index gaps).
    pub evidence_incomplete: bool,
    /// Total events the capture dropped.
    pub dropped_events: u64,
    /// Clock frequency used for TSC → ns conversion.
    pub hz: u64,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn ns(&self, cycles: u64) -> u64 {
        cycles_to_ns(cycles, self.hz)
    }

    /// Render the report as the text the `figures audit` subcommand
    /// prints: evidence status, lifecycle tables, violations with their
    /// event windows, and the per-enclave budget report.
    pub fn render(&self) -> String {
        let mut out = String::from("== protection audit ==\n");
        if self.evidence_incomplete {
            out.push_str(&format!(
                "evidence: INCOMPLETE — {} event(s) dropped; absence-based checks demoted to notes\n",
                self.dropped_events
            ));
        } else {
            out.push_str("evidence: complete (no ring drops)\n");
        }

        out.push_str("\nregion lifecycles (grant -> reclaim -> shootdown-synced):\n");
        if self.regions.is_empty() {
            out.push_str("  (none observed)\n");
        } else {
            out.push_str(&format!(
                "  {:<8} {:<14} {:<10} {:<13} {:>12} {:>12}\n",
                "enclave", "start", "len", "state", "hold-ns", "sync-ns"
            ));
            for r in &self.regions {
                let hold = match (r.grant_tsc, r.reclaim_tsc) {
                    (Some(g), Some(q)) => self.ns(q.saturating_sub(g)).to_string(),
                    _ => "-".to_string(),
                };
                let sync = match (r.reclaim_tsc, r.synced_tsc) {
                    (Some(q), Some(s)) => self.ns(s.saturating_sub(q)).to_string(),
                    _ => "-".to_string(),
                };
                out.push_str(&format!(
                    "  {:<8} {:<#14x} {:<#10x} {:<13} {:>12} {:>12}\n",
                    r.enclave.map_or("-".to_string(), |e| e.to_string()),
                    r.start,
                    r.len,
                    r.state(),
                    hold,
                    sync
                ));
            }
        }

        let completed = self.commands.iter().filter(|c| c.complete()).count();
        let exitless = self
            .commands
            .iter()
            .filter(|c| c.complete() && c.exitless())
            .count();
        out.push_str(&format!(
            "\ncommand chains: {} posted, {} completed ({} exitless), {} unfinished\n",
            self.commands.len(),
            completed,
            exitless,
            self.commands.len() - completed
        ));
        if completed > 0 {
            let mut post_to_nmi = HistSnapshot::default();
            let mut post_to_doorbell = HistSnapshot::default();
            let mut post_to_harvest = HistSnapshot::default();
            let mut post_to_complete = HistSnapshot::default();
            let mut exitless_complete = HistSnapshot::default();
            for c in self.commands.iter().filter(|c| c.complete()) {
                if let Some(nmi) = c.nmi_tsc {
                    post_to_nmi.record(self.ns(nmi.saturating_sub(c.post_tsc)));
                }
                if let Some(db) = c.doorbell_tsc {
                    post_to_doorbell.record(self.ns(db.saturating_sub(c.post_tsc)));
                }
                if let Some(h) = c.harvest_tsc {
                    post_to_harvest.record(self.ns(h.saturating_sub(c.post_tsc)));
                }
                // A chain can be complete with no observed ack (a
                // returned wait proves completion after the ack record
                // was overwritten) — unwrapping here used to panic.
                if let Some(t) = c.complete_tsc {
                    let ns = self.ns(t.saturating_sub(c.post_tsc));
                    post_to_complete.record(ns);
                    if c.exitless() {
                        exitless_complete.record(ns);
                    }
                }
            }
            for (label, h) in [
                ("post->nmi-ns     ", &post_to_nmi),
                ("post->doorbell-ns", &post_to_doorbell),
                ("post->harvest-ns ", &post_to_harvest),
                ("post->complete-ns", &post_to_complete),
                ("exitless-cplt-ns ", &exitless_complete),
            ] {
                if h.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {label} p50 {:>8}  p99 {:>8}  max {:>8}  (n={})\n",
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max,
                    h.count
                ));
            }
        }

        out.push_str(&format!("\nviolations: {}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str(&format!(
                "  [{}] enclave={} tsc={} — {}\n",
                v.kind.name(),
                v.enclave.map_or("-".to_string(), |e| e.to_string()),
                v.tsc,
                v.detail
            ));
            for e in &v.window {
                out.push_str(&format!(
                    "      tsc={:<12} lane={:<3} {:<16} a={:#x} b={:#x}\n",
                    e.tsc,
                    e.lane,
                    e.kind.name(),
                    e.a,
                    e.b
                ));
            }
        }

        out.push_str("\nper-enclave budget report:\n");
        if self.enclaves.is_empty() {
            out.push_str("  (no enclave-attributed events)\n");
        } else {
            out.push_str(&format!(
                "  {:<8} {:>6} {:>12} {:>12} {:>12} {:>7}  status\n",
                "enclave", "exits", "exit-p99", "sd-p99", "wait-p99", "faults"
            ));
            for (id, s) in &self.enclaves {
                let status = if s.is_degraded() {
                    format!("DEGRADED ({})", s.degraded.join(", "))
                } else {
                    "OK".to_string()
                };
                out.push_str(&format!(
                    "  {:<8} {:>6} {:>12} {:>12} {:>12} {:>7}  {}\n",
                    id,
                    s.exits,
                    s.exit_ns.quantile(0.99),
                    s.shootdown_rtt_ns.quantile(0.99),
                    s.cmd_wait_ns.quantile(0.99),
                    s.faults,
                    status
                ));
            }
        }

        if !self.notes.is_empty() {
            out.push_str("\nnotes:\n");
            for n in &self.notes {
                out.push_str(&format!("  - {n}\n"));
            }
        }
        out
    }
}

/// The streaming audit engine. Feed it a chronological event stream via
/// [`AuditEngine::ingest`] (plus the recorder's drop counters via
/// [`AuditEngine::note_lane_drops`]), then call [`AuditEngine::finish`].
pub struct AuditEngine {
    cfg: AuditConfig,
    hz: u64,
    /// Rolling context window for violation reports.
    window: VecDeque<TraceEvent>,
    /// Region lifecycles keyed by (enclave tag, start); values index
    /// `region_order` so the report preserves first-seen order.
    regions: HashMap<(u64, u64), usize>,
    region_order: Vec<RegionLifecycle>,
    /// Command lifecycles keyed by (seq, core), in post order.
    cmds_open: HashMap<(u64, u64), usize>,
    cmd_order: Vec<CmdLifecycle>,
    violations: Vec<Violation>,
    notes: Vec<String>,
    enclaves: BTreeMap<u64, EnclaveStats>,
    /// Enclaves with a fault report seen so far.
    faulted: std::collections::HashSet<u64>,
    /// A `shutdown` control message has been seen.
    shutdown_seen: bool,
    /// Last reservation index seen per lane (for mid-stream gap checks).
    last_idx: HashMap<u32, u64>,
    /// Drops reported by the recorder plus index gaps detected inline.
    dropped: u64,
}

impl AuditEngine {
    /// A fresh engine converting timestamps at `hz`.
    pub fn new(cfg: AuditConfig, hz: u64) -> AuditEngine {
        AuditEngine {
            cfg,
            hz,
            window: VecDeque::with_capacity(cfg.window + 1),
            regions: HashMap::new(),
            region_order: Vec::new(),
            cmds_open: HashMap::new(),
            cmd_order: Vec::new(),
            violations: Vec::new(),
            notes: Vec::new(),
            enclaves: BTreeMap::new(),
            faulted: std::collections::HashSet::new(),
            shutdown_seen: false,
            last_idx: HashMap::new(),
            dropped: 0,
        }
    }

    /// Report the recorder's per-lane ring-overflow counters (events
    /// overwritten before the dump). Any non-zero entry marks the
    /// evidence incomplete.
    pub fn note_lane_drops(&mut self, drops_per_lane: &[u64]) {
        for (lane, &d) in drops_per_lane.iter().enumerate() {
            if d > 0 {
                self.notes
                    .push(format!("lane {lane} dropped {d} event(s) to ring overflow"));
                self.dropped += d;
            }
        }
    }

    fn stats(&mut self, enclave: Option<u64>) -> Option<&mut EnclaveStats> {
        enclave.map(|e| self.enclaves.entry(e).or_default())
    }

    fn violate(&mut self, kind: ViolationKind, enclave: Option<u64>, tsc: u64, detail: String) {
        self.violate_inner(kind, enclave, tsc, detail, false);
    }

    fn violate_inner(
        &mut self,
        kind: ViolationKind,
        enclave: Option<u64>,
        tsc: u64,
        detail: String,
        absence_based: bool,
    ) {
        let window = self.window.iter().copied().collect();
        self.violations.push(Violation {
            kind,
            enclave,
            tsc,
            detail,
            window,
            absence_based,
        });
    }

    fn region_key(e: &TraceEvent) -> (u64, u64) {
        (e.enclave.map_or(0, |id| id + 1), e.a)
    }

    /// Ingest one event. Events must arrive in merged chronological order
    /// (the order [`crate::Recorder::drain`] produces).
    pub fn ingest(&mut self, e: &TraceEvent) {
        // Reservation-index gap ⇒ the ring wrapped mid-capture.
        if let Some(&prev) = self.last_idx.get(&e.lane) {
            if e.idx > prev + 1 {
                self.dropped += e.idx - prev - 1;
                self.notes.push(format!(
                    "lane {} index gap: {} event(s) missing before idx {}",
                    e.lane,
                    e.idx - prev - 1,
                    e.idx
                ));
            }
        }
        self.last_idx.insert(e.lane, e.idx);
        self.ingest_event(e);
    }

    /// Ingest one incremental batch from [`crate::Recorder::tail_from`] /
    /// [`crate::Recorder::tail_all`] and report what this batch changed.
    ///
    /// `dropped_since` is the tail's lap count for the batch; the cursor
    /// protocol already accounts every missing stream index there, so the
    /// per-lane gap detector is bypassed (it would double-count the same
    /// gap). Lifecycles stitch across batches — a `Grant` in one batch and
    /// its `Reclaim` three batches later land on the same
    /// [`RegionLifecycle`] — and nothing is re-scanned: the verdict is
    /// computed from the deltas this batch appended. Absence-based
    /// end-of-trace checks still require [`AuditEngine::finish`].
    pub fn ingest_tail(&mut self, events: &[TraceEvent], dropped_since: u64) -> TailVerdict {
        let vstart = self.violations.len();
        if dropped_since > 0 {
            self.dropped += dropped_since;
            self.notes.push(format!(
                "live tail: {dropped_since} event(s) lapped before delivery"
            ));
        }
        for e in events {
            self.last_idx.insert(e.lane, e.idx);
            self.ingest_event(e);
        }
        let degraded = self
            .enclaves
            .iter()
            .filter_map(|(&id, s)| {
                let over = slo_breaches(&self.cfg.budgets, s);
                (!over.is_empty()).then_some((id, over))
            })
            .collect();
        TailVerdict {
            new_violations: self.violations[vstart..].to_vec(),
            degraded,
            dropped_since,
            ingested: events.len() as u64,
            evidence_incomplete: self.dropped > 0,
        }
    }

    fn ingest_event(&mut self, e: &TraceEvent) {
        self.window.push_back(*e);
        if self.window.len() > self.cfg.window {
            self.window.pop_front();
        }

        match e.kind {
            EventKind::ExitEnter => {
                if let Some(s) = self.stats(e.enclave) {
                    s.exits += 1;
                }
            }
            EventKind::ExitLeave => {
                let ns = e.a;
                if let Some(s) = self.stats(e.enclave) {
                    s.exit_ns.record(ns);
                }
            }
            EventKind::CmdPost => {
                let idx = self.cmd_order.len();
                self.cmd_order.push(CmdLifecycle {
                    seq: e.a,
                    core: e.b,
                    enclave: e.enclave,
                    post_tsc: e.tsc,
                    nmi_tsc: None,
                    doorbell_tsc: None,
                    harvest_tsc: None,
                    drain_tsc: None,
                    complete_tsc: None,
                    complete_ns: 0,
                    wait_ns: None,
                });
                self.cmds_open.insert((e.a, e.b), idx);
            }
            EventKind::NmiKick => {
                // First kick to the destination core after a post starts
                // that command's synchronous phase.
                for (&(_seq, core), &i) in self.cmds_open.iter() {
                    if core == e.b && self.cmd_order[i].nmi_tsc.is_none() {
                        self.cmd_order[i].nmi_tsc = Some(e.tsc);
                    }
                }
            }
            EventKind::CmdDrain => {
                for (&(_seq, core), &i) in self.cmds_open.iter() {
                    if core == e.lane as u64 && self.cmd_order[i].drain_tsc.is_none() {
                        self.cmd_order[i].drain_tsc = Some(e.tsc);
                    }
                }
            }
            EventKind::CmdDoorbell => {
                // Doorbells carry the exact (seq, dest core) key, so the
                // stitch is precise rather than first-kick-after-post.
                if let Some(&i) = self.cmds_open.get(&(e.a, e.b)) {
                    if self.cmd_order[i].doorbell_tsc.is_none() {
                        self.cmd_order[i].doorbell_tsc = Some(e.tsc);
                    }
                }
            }
            EventKind::CmdHarvest => {
                // Guest-mode drain on the emitting core: attribute to
                // every command still open on that core, like CmdDrain.
                for (&(_seq, core), &i) in self.cmds_open.iter() {
                    if core == e.lane as u64 && self.cmd_order[i].harvest_tsc.is_none() {
                        self.cmd_order[i].harvest_tsc = Some(e.tsc);
                    }
                }
            }
            EventKind::CmdComplete => {
                let key = (e.a, e.lane as u64);
                if let Some(i) = self.cmds_open.remove(&key) {
                    let c = &mut self.cmd_order[i];
                    c.complete_tsc = Some(e.tsc);
                    c.complete_ns = e.b;
                    let ns = cycles_to_ns(e.tsc.saturating_sub(c.post_tsc), self.hz);
                    let (enclave, seq, core, bound) =
                        (c.enclave, c.seq, c.core, self.cfg.cmd_bound_ns);
                    if e.b > 0 {
                        if let Some(s) = self.stats(e.enclave.or(enclave)) {
                            s.cmd_latency_ns.record(e.b);
                        }
                    }
                    if ns > bound {
                        self.violate(
                            ViolationKind::CommandStall,
                            enclave.or(e.enclave),
                            e.tsc,
                            format!(
                                "command seq {seq} on core {core} completed after {ns} ns (bound {bound} ns)"
                            ),
                        );
                    }
                } else {
                    self.notes.push(format!(
                        "completion for seq {} on core {} had no observed post",
                        e.a, e.lane
                    ));
                }
            }
            EventKind::CmdWait => {
                if let Some(s) = self.stats(e.enclave) {
                    s.cmd_wait_ns.record(e.b);
                }
                // Attach to the most recent matching command. A returned
                // wait also proves completion, so close the open entry —
                // the ack record itself may have been lost to the ring.
                if let Some(c) = self
                    .cmd_order
                    .iter_mut()
                    .rev()
                    .find(|c| c.seq == e.a && c.wait_ns.is_none())
                {
                    c.wait_ns = Some(e.b);
                    let key = (c.seq, c.core);
                    self.cmds_open.remove(&key);
                }
            }
            EventKind::Grant => {
                // Frame-recycling check: a grant overlapping ANY range
                // still inside its stale-TLB window (reclaimed, shootdown
                // pending) is a protection hole, whichever enclave the
                // frames move between.
                let overlap = self.region_order.iter().find(|r| {
                    r.reclaim_tsc.is_some()
                        && r.synced_tsc.is_none()
                        && e.a < r.start + r.len
                        && r.start < e.a + e.b
                });
                if let Some(r) = overlap {
                    let detail = format!(
                        "grant [{:#x}+{:#x}) overlaps reclaimed range [{:#x}+{:#x}) before its shootdown completed",
                        e.a, e.b, r.start, r.len
                    );
                    self.violate(ViolationKind::UseAfterReclaim, e.enclave, e.tsc, detail);
                }
                let idx = self.region_order.len();
                self.region_order.push(RegionLifecycle {
                    enclave: e.enclave,
                    start: e.a,
                    len: e.b,
                    grant_tsc: Some(e.tsc),
                    reclaim_tsc: None,
                    synced_tsc: None,
                });
                self.regions.insert(Self::region_key(e), idx);
            }
            EventKind::Reclaim => {
                let key = Self::region_key(e);
                match self.regions.get(&key) {
                    Some(&i) if self.region_order[i].reclaim_tsc.is_none() => {
                        self.region_order[i].reclaim_tsc = Some(e.tsc);
                        self.region_order[i].len = self.region_order[i].len.max(e.b);
                    }
                    _ => {
                        // Reclaim of a region granted before the capture
                        // (or re-reclaim): open a grant-less lifecycle.
                        let idx = self.region_order.len();
                        self.region_order.push(RegionLifecycle {
                            enclave: e.enclave,
                            start: e.a,
                            len: e.b,
                            grant_tsc: None,
                            reclaim_tsc: Some(e.tsc),
                            synced_tsc: None,
                        });
                        self.regions.insert(key, idx);
                    }
                }
            }
            EventKind::ShootdownEnd => {
                // A shootdown completion closes the stale window of every
                // pending reclaim it covers: all of its enclave's, or all
                // pending ones when untagged (conservative).
                if let Some(s) = self.stats(e.enclave) {
                    s.shootdown_rtt_ns.record(e.a);
                }
                for r in self.region_order.iter_mut() {
                    let same = e.enclave.is_none() || r.enclave == e.enclave;
                    if same && r.reclaim_tsc.is_some() && r.synced_tsc.is_none() {
                        r.synced_tsc = Some(e.tsc);
                    }
                }
            }
            EventKind::FaultReport => {
                self.faulted.insert(e.a);
                let enclave = Some(e.a);
                if let Some(s) = self.stats(enclave) {
                    s.faults += 1;
                }
                let detail = format!(
                    "fault-isolation teardown reported for enclave {} on core {}",
                    e.a, e.b
                );
                self.violate(ViolationKind::ProtectionFault, enclave, e.tsc, detail);
            }
            EventKind::Teardown => {
                if !self.faulted.contains(&e.a) && !self.shutdown_seen {
                    let detail = format!(
                        "enclave {} torn down with no preceding fault report or shutdown message",
                        e.a
                    );
                    // Absence-based: the fault report or shutdown message
                    // may itself have been dropped.
                    self.violate_inner(
                        ViolationKind::OrphanTeardown,
                        Some(e.a),
                        e.tsc,
                        detail,
                        true,
                    );
                }
            }
            EventKind::CtrlSend | EventKind::CtrlRecv => {
                if unpack_str(e.a, e.b) == "shutdown" {
                    self.shutdown_seen = true;
                }
            }
            // Pure markers: no lifecycle or invariant keyed off them.
            EventKind::EptMap
            | EventKind::EptUnmap
            | EventKind::SnapshotPublish
            | EventKind::SnapshotRetire
            | EventKind::ShootdownBegin
            | EventKind::TlbFlushAll
            | EventKind::TlbFlushPage
            | EventKind::TlbFlushRange
            | EventKind::XememAttach
            | EventKind::XememDetach
            | EventKind::VectorAlloc
            | EventKind::VectorFree
            | EventKind::PostedHarvest
            | EventKind::ZonePublish
            | EventKind::ZoneRetire
            | EventKind::RetireBacklog => {}
        }
    }

    /// Close the stream: run end-of-trace checks, the drop-threshold
    /// check and the SLO watchdogs, and produce the report.
    pub fn finish(mut self) -> AuditReport {
        let evidence_incomplete = self.dropped > 0;
        let end_tsc = self.window.back().map(|e| e.tsc).unwrap_or(0);

        // Absence-based end-of-trace checks.
        let mut pending: Vec<Violation> = Vec::new();
        for c in self.cmd_order.iter().filter(|c| !c.complete()) {
            pending.push(Violation {
                kind: ViolationKind::CommandStall,
                enclave: c.enclave,
                tsc: c.post_tsc,
                detail: format!(
                    "command seq {} posted to core {} never completed",
                    c.seq, c.core
                ),
                window: Vec::new(),
                absence_based: true,
            });
        }
        let mut stitch_notes: Vec<String> = Vec::new();
        for r in self.region_order.iter().filter(|r| r.synced_tsc.is_none()) {
            match (r.grant_tsc, r.reclaim_tsc) {
                (_, Some(reclaim_tsc)) => pending.push(Violation {
                    kind: ViolationKind::UnsyncedReclaim,
                    enclave: r.enclave,
                    tsc: reclaim_tsc,
                    detail: format!(
                        "reclaimed range [{:#x}+{:#x}) never covered by a shootdown completion",
                        r.start, r.len
                    ),
                    window: Vec::new(),
                    absence_based: true,
                }),
                // Held region: granted, never reclaimed. Nothing pending.
                (Some(_), None) => {}
                // Degenerate stitch: a lapped ring can hand the engine a
                // lifecycle with neither grant nor reclaim timestamp
                // (both events dropped before the tail caught up). There
                // is no TSC to anchor a violation to and no evidence the
                // reclaim happened inside the capture — never panic or
                // accuse on missing evidence; record what we can't prove.
                (None, None) => stitch_notes.push(format!(
                    "evidence incomplete: range [{:#x}+{:#x}) has no grant or \
                     reclaim timestamp (events dropped before stitching); \
                     stale-window check skipped",
                    r.start, r.len
                )),
            }
        }
        self.notes.extend(stitch_notes);
        self.violations.extend(pending);
        // Demote absence-based findings (including any recorded before
        // the drops became known).
        if evidence_incomplete {
            let (demoted, kept): (Vec<_>, Vec<_>) =
                self.violations.drain(..).partition(|v| v.absence_based);
            self.violations = kept;
            for v in demoted {
                self.notes.push(format!(
                    "demoted ({} dropped events): {}",
                    self.dropped, v.detail
                ));
            }
        }

        if self.dropped > self.cfg.drop_threshold {
            let detail = format!(
                "capture dropped {} event(s) (threshold {})",
                self.dropped, self.cfg.drop_threshold
            );
            self.violate(ViolationKind::RingDrops, None, end_tsc, detail);
        }

        // SLO watchdogs.
        let budgets = self.cfg.budgets;
        for s in self.enclaves.values_mut() {
            s.degraded = slo_breaches(&budgets, s);
        }

        AuditReport {
            regions: self.region_order,
            commands: self.cmd_order,
            violations: self.violations,
            notes: self.notes,
            enclaves: self.enclaves,
            evidence_incomplete,
            dropped_events: self.dropped,
            hz: self.hz,
        }
    }
}

/// Convenience: audit a full dump plus the recorder's per-lane drop
/// counters in one call.
pub fn audit_events(
    cfg: AuditConfig,
    hz: u64,
    events: &[TraceEvent],
    drops_per_lane: &[u64],
) -> AuditReport {
    let mut engine = AuditEngine::new(cfg, hz);
    engine.note_lane_drops(drops_per_lane);
    for e in events {
        engine.ingest(e);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_str;

    const HZ: u64 = 1_000_000_000; // 1 cycle = 1 ns

    fn ev(tsc: u64, lane: u32, idx: u64, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            tsc,
            lane,
            idx,
            kind,
            enclave: None,
            a,
            b,
        }
    }

    fn tagged(mut e: TraceEvent, enclave: u64) -> TraceEvent {
        e.enclave = Some(enclave);
        e
    }

    /// A complete, clean grant → reclaim → shootdown trace for enclave 0.
    fn clean_stream() -> Vec<TraceEvent> {
        vec![
            tagged(ev(100, 2, 0, EventKind::Grant, 0x20_0000, 0x20_0000), 0),
            tagged(ev(200, 2, 1, EventKind::CmdPost, 7, 0), 0),
            ev(210, 2, 2, EventKind::NmiKick, 0, 0),
            tagged(ev(250, 0, 0, EventKind::CmdDrain, 1, 0), 0),
            tagged(ev(300, 0, 1, EventKind::CmdComplete, 7, 100), 0),
            tagged(ev(350, 2, 3, EventKind::CmdWait, 7, 150), 0),
            tagged(ev(400, 2, 4, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
            tagged(ev(500, 2, 5, EventKind::ShootdownEnd, 400, 0), 0),
        ]
    }

    #[test]
    fn clean_stream_has_zero_violations_and_complete_lifecycles() {
        let report = audit_events(AuditConfig::default(), HZ, &clean_stream(), &[0, 0, 0]);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(!report.evidence_incomplete);
        assert_eq!(report.regions.len(), 1);
        assert!(report.regions[0].complete());
        assert_eq!(report.regions[0].state(), "synced");
        assert_eq!(report.commands.len(), 1);
        assert!(report.commands[0].complete());
        assert_eq!(report.commands[0].nmi_tsc, Some(210));
        assert_eq!(report.commands[0].drain_tsc, Some(250));
        assert_eq!(report.commands[0].wait_ns, Some(150));
        let s = &report.enclaves[&0];
        assert_eq!(s.cmd_wait_ns.count, 1);
        assert_eq!(s.cmd_latency_ns.count, 1);
        assert_eq!(s.shootdown_rtt_ns.count, 1);
        let text = report.render();
        assert!(text.contains("violations: 0"));
        assert!(text.contains("synced"));
    }

    /// Exitless delivery: CmdPost → CmdDoorbell → CmdHarvest →
    /// CmdComplete → CmdWait, with no NmiKick and no VM exit anywhere in
    /// the chain, must stitch to a complete, violation-free lifecycle.
    #[test]
    fn exitless_chain_without_nmi_is_complete() {
        let events = vec![
            tagged(ev(200, 2, 0, EventKind::CmdPost, 7, 0), 0),
            tagged(ev(205, 2, 1, EventKind::CmdDoorbell, 7, 0), 0),
            // Guest core 0 harvests in guest mode (lane = core).
            tagged(ev(240, 0, 0, EventKind::CmdHarvest, 1, 0), 0),
            tagged(ev(260, 0, 1, EventKind::CmdComplete, 7, 60), 0),
            tagged(ev(300, 2, 2, EventKind::CmdWait, 7, 100), 0),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[0, 0, 0]);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.commands.len(), 1);
        let c = &report.commands[0];
        assert!(c.complete());
        assert!(c.exitless());
        assert_eq!(c.nmi_tsc, None);
        assert_eq!(c.doorbell_tsc, Some(205));
        assert_eq!(c.harvest_tsc, Some(240));
        assert_eq!(c.complete_tsc, Some(260));
        let text = report.render();
        assert!(text.contains("1 completed (1 exitless)"), "{text}");
        assert!(text.contains("post->doorbell-ns"), "{text}");
        assert!(text.contains("post->harvest-ns"), "{text}");
        assert!(!text.contains("post->nmi-ns"), "{text}");
    }

    /// A doorbell chain that escalated (NmiKick present) is still valid
    /// but no longer counts as exitless.
    #[test]
    fn escalated_doorbell_chain_is_not_exitless() {
        let events = vec![
            tagged(ev(200, 2, 0, EventKind::CmdPost, 7, 0), 0),
            tagged(ev(205, 2, 1, EventKind::CmdDoorbell, 7, 0), 0),
            ev(1000, 2, 2, EventKind::NmiKick, 0, 0),
            tagged(ev(1050, 0, 0, EventKind::CmdDrain, 1, 0), 0),
            tagged(ev(1080, 0, 1, EventKind::CmdComplete, 7, 880), 0),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[0, 0, 0]);
        assert!(report.ok(), "violations: {:?}", report.violations);
        let c = &report.commands[0];
        assert!(c.complete());
        assert!(!c.exitless());
        assert_eq!(c.doorbell_tsc, Some(205));
        assert_eq!(c.nmi_tsc, Some(1000));
        assert!(report.render().contains("1 completed (0 exitless)"));
    }

    #[test]
    fn fault_report_is_an_attributed_violation() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::FaultReport, 3, 1), 3),
            tagged(ev(200, 2, 1, EventKind::Teardown, 3, 0), 3),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::ProtectionFault);
        assert_eq!(report.violations[0].enclave, Some(3));
        assert!(!report.violations[0].window.is_empty());
        assert_eq!(report.enclaves[&3].faults, 1);
    }

    #[test]
    fn teardown_without_cause_is_orphan() {
        let events = vec![tagged(ev(100, 2, 0, EventKind::Teardown, 5, 0), 5)];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::OrphanTeardown);
        assert_eq!(report.violations[0].enclave, Some(5));
    }

    #[test]
    fn shutdown_message_legitimizes_teardown() {
        let (a, b) = pack_str("shutdown");
        let events = vec![
            ev(50, 2, 0, EventKind::CtrlSend, a, b),
            tagged(ev(100, 2, 1, EventKind::Teardown, 5, 0), 5),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn grant_inside_stale_window_violates() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
            // Frames recycled to enclave 1 before the shootdown completed.
            tagged(ev(150, 2, 1, EventKind::Grant, 0x30_0000, 0x20_0000), 1),
            tagged(ev(200, 2, 2, EventKind::ShootdownEnd, 100, 0), 0),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::UseAfterReclaim);
        assert_eq!(report.violations[0].enclave, Some(1));
        // The same grant after the shootdown is clean.
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
            tagged(ev(200, 2, 1, EventKind::ShootdownEnd, 100, 0), 0),
            tagged(ev(250, 2, 2, EventKind::Grant, 0x30_0000, 0x20_0000), 1),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert!(report.ok());
    }

    #[test]
    fn unfinished_command_and_reclaim_violate_when_evidence_complete() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::CmdPost, 9, 1), 0),
            tagged(ev(200, 2, 1, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        let kinds: Vec<_> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::CommandStall));
        assert!(kinds.contains(&ViolationKind::UnsyncedReclaim));
    }

    #[test]
    fn drops_demote_absence_checks_and_trip_threshold() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::CmdPost, 9, 1), 0),
            tagged(ev(200, 2, 1, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
        ];
        // Generous threshold: drops only demote, no violation at all.
        let cfg = AuditConfig {
            drop_threshold: 100,
            ..AuditConfig::default()
        };
        let report = audit_events(cfg, HZ, &events, &[0, 0, 7]);
        assert!(report.evidence_incomplete);
        assert_eq!(report.dropped_events, 7);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("demoted")));
        // Default threshold 0: the drops themselves are a violation, but
        // the absence-based findings stay demoted.
        let report = audit_events(AuditConfig::default(), HZ, &events, &[0, 0, 7]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::RingDrops);
    }

    #[test]
    fn index_gap_detected_midstream() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::CmdPost, 9, 1), 0),
            tagged(ev(200, 2, 5, EventKind::CmdComplete, 9, 10), 0), // idx jumped 0 -> 5
        ];
        // The completion is on lane 2 keyed to core 1 ⇒ no match; with the
        // gap the engine must demote the stall instead of asserting it.
        let cfg = AuditConfig {
            drop_threshold: 100,
            ..AuditConfig::default()
        };
        let report = audit_events(cfg, HZ, &events, &[]);
        assert!(report.evidence_incomplete);
        assert_eq!(report.dropped_events, 4);
        assert!(report.ok());
    }

    #[test]
    fn command_over_bound_is_a_stall_even_with_drops() {
        let cfg = AuditConfig {
            cmd_bound_ns: 1_000,
            drop_threshold: 100,
            ..AuditConfig::default()
        };
        let events = vec![
            tagged(ev(1_000, 2, 0, EventKind::CmdPost, 9, 1), 0),
            tagged(ev(50_000, 1, 0, EventKind::CmdComplete, 9, 49_000), 0),
        ];
        let report = audit_events(cfg, HZ, &events, &[0, 5]);
        // Presence-based: the over-bound completion was observed, so it is
        // NOT demoted by the incomplete evidence.
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::CommandStall);
        assert!(report.violations[0].detail.contains("bound"));
    }

    #[test]
    fn epoch_shootdown_closes_all_pending_reclaims() {
        let events = vec![
            tagged(ev(100, 2, 0, EventKind::Grant, 0x20_0000, 0x20_0000), 0),
            tagged(ev(110, 2, 1, EventKind::Grant, 0x40_0000, 0x20_0000), 0),
            tagged(ev(200, 2, 2, EventKind::Reclaim, 0x20_0000, 0x20_0000), 0),
            tagged(ev(210, 2, 3, EventKind::Reclaim, 0x40_0000, 0x20_0000), 0),
            tagged(ev(300, 2, 4, EventKind::ShootdownEnd, 200, 0), 0),
        ];
        let report = audit_events(AuditConfig::default(), HZ, &events, &[]);
        assert!(report.ok());
        assert_eq!(report.regions.len(), 2);
        assert!(report.regions.iter().all(|r| r.complete()));
        assert!(report.regions.iter().all(|r| r.synced_tsc == Some(300)));
    }

    #[test]
    fn slo_watchdog_marks_degraded() {
        let cfg = AuditConfig {
            budgets: SloBudgets {
                exit_p99_ns: Some(1_000),
                ..SloBudgets::default()
            },
            ..AuditConfig::default()
        };
        let mut engine = AuditEngine::new(cfg, HZ);
        // 90 fast exits + 10 slow ones: p99 lands in the slow tail.
        for i in 0..100u64 {
            let ns = if i < 90 { 100 } else { 1 << 20 };
            engine.ingest(&tagged(ev(100 + i, 0, i, EventKind::ExitLeave, ns, 0), 0));
        }
        // Enclave 1 stays under budget.
        engine.ingest(&tagged(ev(1_100, 1, 0, EventKind::ExitLeave, 100, 0), 1));
        let report = engine.finish();
        assert!(report.ok(), "degradation is a budget flag, not a violation");
        assert!(report.enclaves[&0].is_degraded());
        assert!(!report.enclaves[&1].is_degraded());
        assert!(report.render().contains("DEGRADED"));
    }

    #[test]
    fn render_is_stable_for_empty_input() {
        let report = audit_events(AuditConfig::default(), HZ, &[], &[]);
        assert!(report.ok());
        let text = report.render();
        assert!(text.contains("(none observed)"));
        assert!(text.contains("(no enclave-attributed events)"));
    }

    /// Regression: `render()` unwrapped `complete_tsc` inside the
    /// `complete()` filter. A drain-merged chain whose `CmdComplete`
    /// record was lapped by the ring but whose controller `CmdWait`
    /// survived is complete (the wait can only follow the ack) yet has no
    /// `complete_tsc` — rendering such a chain panicked, and the old
    /// `complete()` miscounted it as unfinished.
    #[test]
    fn wait_only_chain_is_complete_and_renders() {
        let cfg = AuditConfig {
            drop_threshold: 100,
            ..AuditConfig::default()
        };
        let mut engine = AuditEngine::new(cfg, HZ);
        let events = [
            tagged(ev(100, 2, 0, EventKind::CmdPost, 9, 1), 0),
            // The CmdComplete on lane 1 was overwritten before delivery
            // (the lap below), but the controller's wait returned:
            tagged(ev(300, 2, 1, EventKind::CmdWait, 9, 150), 0),
        ];
        let verdict = engine.ingest_tail(&events, 1);
        assert_eq!(verdict.ingested, 2);
        assert!(verdict.evidence_incomplete);
        let report = engine.finish();
        assert_eq!(report.commands.len(), 1);
        assert!(
            report.commands[0].complete(),
            "a returned wait proves completion"
        );
        assert!(report.commands[0].complete_tsc.is_none());
        let text = report.render(); // panicked before the fix
        assert!(text.contains("1 posted, 1 completed (0 exitless), 0 unfinished"));
        assert!(!report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::CommandStall));
    }

    #[test]
    fn ingest_tail_stitches_lifecycles_across_partial_batches() {
        let mut engine = AuditEngine::new(AuditConfig::default(), HZ);
        let s = clean_stream();
        for chunk in s.chunks(3) {
            let verdict = engine.ingest_tail(chunk, 0);
            assert!(verdict.new_violations.is_empty());
            assert!(!verdict.evidence_incomplete);
        }
        let report = engine.finish();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.regions.len(), 1);
        assert!(report.regions[0].complete());
        assert_eq!(report.commands.len(), 1);
        assert!(report.commands[0].complete());
        assert_eq!(report.commands[0].wait_ns, Some(150));
    }

    #[test]
    fn ingest_tail_fires_presence_violations_live() {
        let mut engine = AuditEngine::new(AuditConfig::default(), HZ);
        let clean = engine.ingest_tail(
            &[tagged(
                ev(100, 2, 0, EventKind::Grant, 0x20_0000, 0x1000),
                0,
            )],
            0,
        );
        assert!(clean.new_violations.is_empty());
        let verdict =
            engine.ingest_tail(&[tagged(ev(200, 2, 1, EventKind::FaultReport, 3, 1), 3)], 0);
        assert_eq!(verdict.new_violations.len(), 1);
        assert_eq!(
            verdict.new_violations[0].kind,
            ViolationKind::ProtectionFault
        );
        assert_eq!(verdict.new_violations[0].enclave, Some(3));
        // The violation is reported exactly once, in the batch it arrived.
        let quiet = engine.ingest_tail(&[], 0);
        assert!(quiet.new_violations.is_empty());
    }

    #[test]
    fn ingest_tail_recomputes_degradation_per_batch() {
        let cfg = AuditConfig {
            budgets: SloBudgets {
                shootdown_p99_ns: Some(1_000),
                ..SloBudgets::default()
            },
            ..AuditConfig::default()
        };
        let mut engine = AuditEngine::new(cfg, HZ);
        let verdict = engine.ingest_tail(
            &[tagged(
                ev(100, 2, 0, EventKind::ShootdownEnd, 1 << 20, 0),
                0,
            )],
            0,
        );
        assert_eq!(verdict.degraded.len(), 1);
        assert_eq!(verdict.degraded[0].0, 0);
        assert!(verdict.degraded[0].1[0].contains("shootdown"));
        assert!(
            verdict.new_violations.is_empty(),
            "degradation is a budget flag, not a violation"
        );
        // Enough fast RTTs pull the p99 back under budget: recovery.
        let fast: Vec<TraceEvent> = (0..200)
            .map(|i| tagged(ev(200 + i, 2, 1 + i, EventKind::ShootdownEnd, 100, 0), 0))
            .collect();
        let verdict = engine.ingest_tail(&fast, 0);
        assert!(verdict.degraded.is_empty());
    }

    #[test]
    fn ingest_tail_lap_drops_not_double_counted() {
        let cfg = AuditConfig {
            drop_threshold: 1_000,
            ..AuditConfig::default()
        };
        let mut engine = AuditEngine::new(cfg, HZ);
        // Batch 1: first 5 events of lane 0 were lapped before delivery.
        engine.ingest_tail(&[tagged(ev(100, 0, 5, EventKind::CmdPost, 1, 0), 0)], 5);
        // Batch 2: 24 more lapped; the delivered index jumps 5 -> 30. The
        // gap detector must not count those 24 again.
        engine.ingest_tail(
            &[tagged(ev(900, 0, 30, EventKind::CmdComplete, 1, 10), 0)],
            24,
        );
        let report = engine.finish();
        assert_eq!(report.dropped_events, 29);
        assert!(report.evidence_incomplete);
    }

    /// Regression: `finish` used to `unwrap()` `reclaim_tsc` on every
    /// unsynced region. A lapped ring can stitch a lifecycle whose grant
    /// AND reclaim events were both dropped — such a region must become
    /// an evidence-incomplete note, not a panic or an accusation.
    #[test]
    fn degenerate_lifecycle_without_reclaim_tsc_is_noted_not_fatal() {
        let mut engine = AuditEngine::new(AuditConfig::default(), HZ);
        engine.ingest(&tagged(
            ev(100, 2, 0, EventKind::Grant, 0x10_0000, 0x1000),
            0,
        ));
        // Simulate a lap-stitched region: no timestamps survived.
        engine.region_order.push(RegionLifecycle {
            enclave: Some(1),
            start: 0x40_0000,
            len: 0x2000,
            grant_tsc: None,
            reclaim_tsc: None,
            synced_tsc: None,
        });
        let report = engine.finish(); // must not panic
        assert!(
            !report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::UnsyncedReclaim),
            "a timestamp-free region is not evidence of an unsynced reclaim"
        );
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("0x400000") && n.contains("evidence incomplete")),
            "degenerate stitch must be surfaced as a note: {:?}",
            report.notes
        );
        // The well-formed held region stays silent.
        assert!(!report.notes.iter().any(|n| n.contains("0x100000")));
    }
}
