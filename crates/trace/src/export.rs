//! Trace exporters: JSON Lines and chrome://tracing, hand-rolled so the
//! crate stays dependency-free. Timestamps convert from sim-TSC cycles to
//! microseconds with the caller-supplied clock frequency.

use crate::profile::{Phase, ProfileSnapshot, WindowSnapshot};
use crate::{unpack_str, EventKind, TraceEvent};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_name_fields(e: &TraceEvent, out: &mut String) {
    if e.kind.carries_name() {
        out.push_str(",\"name\":\"");
        escape(&unpack_str(e.a, e.b), out);
        out.push('"');
    } else {
        out.push_str(&format!(",\"a\":{},\"b\":{}", e.a, e.b));
    }
}

/// One JSON object per event, chronological, TSC converted to ns.
pub fn to_jsonl(events: &[TraceEvent], hz: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let ns = cycles_to_ns(e.tsc, hz);
        out.push_str(&format!(
            "{{\"ts_ns\":{},\"tsc\":{},\"lane\":{},\"idx\":{},\"kind\":\"{}\"",
            ns,
            e.tsc,
            e.lane,
            e.idx,
            e.kind.name()
        ));
        if let Some(enc) = e.enclave {
            out.push_str(&format!(",\"enclave\":{enc}"));
        }
        push_name_fields(e, &mut out);
        out.push_str("}\n");
    }
    out
}

fn cycles_to_ns(tsc: u64, hz: u64) -> u64 {
    if hz == 0 {
        return tsc;
    }
    // Split to avoid overflow on large cycle counts.
    let secs = tsc / hz;
    let rem = tsc % hz;
    secs * 1_000_000_000 + rem * 1_000_000_000 / hz
}

fn ts_us(tsc: u64, t0: u64, hz: u64) -> f64 {
    cycles_to_ns(tsc.saturating_sub(t0), hz) as f64 / 1000.0
}

/// Span-begin kinds paired into chrome "X" complete events by
/// [`to_chrome_trace`]; everything else becomes an instant event.
fn span_end_for(kind: EventKind) -> Option<EventKind> {
    match kind {
        EventKind::ExitEnter => Some(EventKind::ExitLeave),
        EventKind::ShootdownBegin => Some(EventKind::ShootdownEnd),
        _ => None,
    }
}

/// chrome://tracing (and https://ui.perfetto.dev) loadable JSON. Exit and
/// shootdown begin/end pairs render as duration ("X") slices per lane;
/// all other events render as instants ("i"). `pid` 0, `tid` = lane.
pub fn to_chrome_trace(events: &[TraceEvent], hz: u64) -> String {
    let t0 = events.iter().map(|e| e.tsc).min().unwrap_or(0);
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Per-lane stack of pending span-begin events (index into `events`).
    let mut open: Vec<(u32, EventKind, usize)> = Vec::new();
    let emit = |out: &mut String, first: &mut bool, body: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&body);
    };
    for (i, e) in events.iter().enumerate() {
        if span_end_for(e.kind).is_some() {
            open.push((e.lane, e.kind, i));
            continue;
        }
        let is_end = matches!(e.kind, EventKind::ExitLeave | EventKind::ShootdownEnd);
        if is_end {
            let want = match e.kind {
                EventKind::ExitLeave => EventKind::ExitEnter,
                _ => EventKind::ShootdownBegin,
            };
            if let Some(pos) = open
                .iter()
                .rposition(|(lane, kind, _)| *lane == e.lane && *kind == want)
            {
                let (_, _, bi) = open.remove(pos);
                let begin = &events[bi];
                let mut name = String::new();
                if begin.kind.carries_name() {
                    escape(&unpack_str(begin.a, begin.b), &mut name);
                } else {
                    name.push_str(begin.kind.name());
                }
                let ts = ts_us(begin.tsc, t0, hz);
                let dur = (ts_us(e.tsc, t0, hz) - ts).max(0.001);
                emit(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"ns\":{}}}}}",
                        name,
                        begin.kind.name(),
                        e.lane,
                        ts,
                        dur,
                        e.a
                    ),
                );
                continue;
            }
            // Unmatched end: fall through and render as an instant.
        }
        let mut name = String::new();
        if e.kind.carries_name() {
            escape(&unpack_str(e.a, e.b), &mut name);
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{:.3}}}",
                    name,
                    e.kind.name(),
                    e.lane,
                    ts_us(e.tsc, t0, hz)
                ),
            );
        } else {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    e.kind.name(),
                    e.kind.name(),
                    e.lane,
                    ts_us(e.tsc, t0, hz),
                    e.a,
                    e.b
                ),
            );
        }
    }
    // Unmatched begins (still-open spans at dump time) become instants
    // flagged `unpaired`, keeping their payload so in-flight exits and
    // shootdowns stay visible in the trace instead of vanishing.
    for (lane, kind, bi) in open {
        let begin = &events[bi];
        let mut name = String::new();
        let args = if kind.carries_name() {
            escape(&unpack_str(begin.a, begin.b), &mut name);
            "{\"unpaired\":true}".to_string()
        } else {
            name.push_str(kind.name());
            format!("{{\"unpaired\":true,\"a\":{},\"b\":{}}}", begin.a, begin.b)
        };
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                name,
                kind.name(),
                lane,
                ts_us(begin.tsc, t0, hz),
                args
            ),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

fn enclave_frame(enclave: Option<u64>) -> String {
    match enclave {
        Some(e) => format!("enclave{e}"),
        None => "native".to_string(),
    }
}

/// Folded-stack flamegraph lines from a profile snapshot:
/// `phase;enclave;detail cycles`, one line per non-zero cell, suitable
/// for `flamegraph.pl` / speedscope "folded" import. Per-core cycles get
/// a `coreN` leaf; controller-side overlay attribution (shootdown waits,
/// throttle intervals) gets a `controller` leaf so off-core costs stay
/// distinguishable from on-core phase time.
pub fn to_folded(snap: &ProfileSnapshot) -> String {
    let mut out = String::new();
    for lane in &snap.lanes {
        for ep in &lane.enclaves {
            for phase in Phase::ALL {
                let cycles = ep.cycles[phase as usize];
                if cycles == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{};{};core{} {}\n",
                    phase.name(),
                    enclave_frame(ep.enclave),
                    lane.lane,
                    cycles
                ));
            }
        }
    }
    for ep in &snap.overlay {
        for phase in Phase::ALL {
            let cycles = ep.cycles[phase as usize];
            if cycles == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};{};controller {}\n",
                phase.name(),
                enclave_frame(ep.enclave),
                cycles
            ));
        }
    }
    out
}

/// chrome://tracing counter tracks from per-lane window streams: one
/// "C" event per sealed window per lane, with each phase's cycles as a
/// stacked series. `tracks` pairs a lane with its tailed windows;
/// `window_cycles` positions each window on the timeline. Loadable
/// standalone or merged into a [`to_chrome_trace`] document.
pub fn to_chrome_counter_trace(
    tracks: &[(u32, Vec<WindowSnapshot>)],
    window_cycles: u64,
    hz: u64,
) -> String {
    let mut out = String::with_capacity(tracks.len() * 256 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (lane, windows) in tracks {
        for w in windows {
            let ts = ts_us(w.index.saturating_mul(window_cycles), 0, hz);
            let mut args = String::new();
            for phase in Phase::ALL {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!(
                    "\"{}\":{}",
                    phase.name(),
                    w.phase_cycles[phase as usize]
                ));
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"phase cycles core{lane}\",\"cat\":\"profile\",\"ph\":\"C\",\"pid\":0,\"tid\":{lane},\"ts\":{ts:.3},\"args\":{{{args}}}}}"
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// A completed command: post event paired with its completion.
#[derive(Clone, Copy, Debug)]
pub struct SlowCommand {
    /// Command sequence number.
    pub seq: u64,
    /// Core the command was posted to.
    pub core: u64,
    /// Post timestamp (TSC).
    pub post_tsc: u64,
    /// Post → complete latency in nanoseconds (as measured by the
    /// completing hypervisor).
    pub latency_ns: u64,
}

/// Pair `CmdPost`(a=seq, b=core) with `CmdComplete`(a=seq, b=latency ns)
/// events and return the `n` slowest completions, slowest first. Sequence
/// numbers are per-queue, so posts are keyed by (seq, core) and matched
/// against the lane the completion was recorded on.
pub fn slowest_commands(events: &[TraceEvent], n: usize) -> Vec<SlowCommand> {
    use std::collections::HashMap;
    let mut posts: HashMap<(u64, u64), u64> = HashMap::new(); // (seq, core) -> tsc
    let mut done: Vec<SlowCommand> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::CmdPost => {
                posts.insert((e.a, e.b), e.tsc);
            }
            EventKind::CmdComplete => {
                let core = e.lane as u64;
                let post_tsc = posts.remove(&(e.a, core)).unwrap_or(e.tsc);
                done.push(SlowCommand {
                    seq: e.a,
                    core,
                    post_tsc,
                    latency_ns: e.b,
                });
            }
            _ => {}
        }
    }
    done.sort_by(|x, y| y.latency_ns.cmp(&x.latency_ns).then(x.seq.cmp(&y.seq)));
    done.truncate(n);
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_str;

    fn ev(tsc: u64, lane: u32, idx: u64, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            tsc,
            lane,
            idx,
            kind,
            enclave: None,
            a,
            b,
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let (a, b) = pack_str("cpuid");
        let events = vec![
            ev(1000, 0, 0, EventKind::ExitEnter, a, b),
            ev(2000, 0, 1, EventKind::Grant, 0x1000, 0x2000),
        ];
        let text = to_jsonl(&events, 1_000_000_000);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"exit_enter\""));
        assert!(lines[0].contains("\"name\":\"cpuid\""));
        assert!(lines[1].contains("\"a\":4096"));
        // 1 GHz: 1 cycle = 1 ns.
        assert!(lines[0].contains("\"ts_ns\":1000"));
    }

    /// The exitless-delivery events must come out of both exporters with
    /// their stable labels (tooling greps for these names).
    #[test]
    fn doorbell_events_are_labelled_in_both_exporters() {
        let events = vec![
            ev(1000, 2, 0, EventKind::CmdDoorbell, 7, 1),
            ev(2000, 1, 0, EventKind::CmdHarvest, 1, 0),
        ];
        let jsonl = to_jsonl(&events, 1_000_000_000);
        assert!(jsonl.contains("\"kind\":\"cmd_doorbell\""));
        assert!(jsonl.contains("\"kind\":\"cmd_harvest\""));
        let chrome = to_chrome_trace(&events, 1_000_000_000);
        assert!(chrome.contains("\"name\":\"cmd_doorbell\""));
        assert!(chrome.contains("\"name\":\"cmd_harvest\""));
    }

    #[test]
    fn zone_shard_events_are_labelled_in_both_exporters() {
        let events = vec![
            ev(1000, 0, 0, EventKind::ZonePublish, 1, 4),
            ev(2000, 0, 0, EventKind::ZoneRetire, 1, 2),
            ev(3000, 0, 0, EventKind::RetireBacklog, 1, 3),
        ];
        let jsonl = to_jsonl(&events, 1_000_000_000);
        assert!(jsonl.contains("\"kind\":\"zone_publish\""));
        assert!(jsonl.contains("\"kind\":\"zone_retire\""));
        assert!(jsonl.contains("\"kind\":\"retire_backlog\""));
        let chrome = to_chrome_trace(&events, 1_000_000_000);
        assert!(chrome.contains("\"name\":\"zone_publish\""));
        assert!(chrome.contains("\"name\":\"zone_retire\""));
        assert!(chrome.contains("\"name\":\"retire_backlog\""));
    }

    #[test]
    fn chrome_trace_pairs_spans() {
        let (a, b) = pack_str("msr_read");
        let events = vec![
            ev(1000, 0, 0, EventKind::ExitEnter, a, b),
            ev(1500, 1, 0, EventKind::CmdPost, 7, 1),
            ev(3000, 0, 1, EventKind::ExitLeave, 2000, 0),
        ];
        let text = to_chrome_trace(&events, 1_000_000_000);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with('}'));
        // The exit pair becomes one X slice named after the reason.
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"msr_read\""));
        assert!(text.contains("\"dur\":2.000"));
        // The post stays an instant on lane 1.
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"tid\":1"));
    }

    #[test]
    fn chrome_trace_handles_unmatched_spans() {
        let events = vec![
            ev(100, 2, 0, EventKind::ShootdownBegin, 3, 1),
            ev(500, 0, 0, EventKind::ExitLeave, 400, 0),
        ];
        let text = to_chrome_trace(&events, 1_000_000_000);
        // Both degrade to instants rather than corrupting the stream.
        assert_eq!(text.matches("\"ph\":\"i\"").count(), 2);
        assert!(!text.contains("\"ph\":\"X\""));
        // The in-flight begin keeps its payload and is flagged unpaired.
        assert!(text.contains("\"unpaired\":true"));
        assert!(text.contains("\"a\":3,\"b\":1"));
    }

    #[test]
    fn unpaired_named_begin_keeps_name() {
        let (a, b) = pack_str("hlt");
        let events = vec![ev(100, 0, 0, EventKind::ExitEnter, a, b)];
        let text = to_chrome_trace(&events, 1_000_000_000);
        assert!(text.contains("\"name\":\"hlt\""));
        assert!(text.contains("\"unpaired\":true"));
    }

    #[test]
    fn jsonl_carries_enclave_tag() {
        let mut e = ev(1000, 0, 0, EventKind::Grant, 0x1000, 0x2000);
        e.enclave = Some(3);
        let text = to_jsonl(&[e], 1_000_000_000);
        assert!(text.contains("\"enclave\":3"));
        // Untagged events omit the field entirely.
        let text = to_jsonl(
            &[ev(1000, 0, 0, EventKind::Grant, 0x1000, 0x2000)],
            1_000_000_000,
        );
        assert!(!text.contains("enclave"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        assert_eq!(
            to_chrome_trace(&[], 1_000_000_000),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"
        );
        assert_eq!(to_jsonl(&[], 1_000_000_000), "");
    }

    #[test]
    fn slowest_commands_pairs_and_ranks() {
        let events = vec![
            ev(100, 3, 0, EventKind::CmdPost, 1, 0),
            ev(110, 3, 1, EventKind::CmdPost, 2, 1),
            ev(500, 0, 0, EventKind::CmdComplete, 1, 400),
            ev(900, 1, 0, EventKind::CmdComplete, 2, 790),
            ev(950, 3, 2, EventKind::CmdPost, 3, 0), // never completes
        ];
        let top = slowest_commands(&events, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].seq, 2);
        assert_eq!(top[0].latency_ns, 790);
        assert_eq!(top[0].core, 1);
        assert_eq!(top[1].seq, 1);
        assert_eq!(slowest_commands(&events, 1).len(), 1);
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn folded_stacks_cover_lanes_and_overlay() {
        use crate::profile::{EnclavePhases, LaneProfile, Phase, ProfileSnapshot, NUM_PHASES};
        let mut on_core = EnclavePhases {
            enclave: Some(3),
            cycles: [0; NUM_PHASES],
        };
        on_core.cycles[Phase::GuestExec as usize] = 9000;
        on_core.cycles[Phase::RootExit as usize] = 1000;
        let mut native = EnclavePhases {
            enclave: None,
            cycles: [0; NUM_PHASES],
        };
        native.cycles[Phase::Idle as usize] = 500;
        let mut overlay = EnclavePhases {
            enclave: Some(3),
            cycles: [0; NUM_PHASES],
        };
        overlay.cycles[Phase::ShootdownWait as usize] = 250;
        let snap = ProfileSnapshot {
            lanes: vec![LaneProfile {
                lane: 0,
                wall: 10_500,
                accounted: 10_500,
                enclaves: vec![on_core, native],
                dwell: Vec::new(),
            }],
            overlay: vec![overlay],
        };
        let folded = to_folded(&snap);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"guest_exec;enclave3;core0 9000"));
        assert!(lines.contains(&"root_exit;enclave3;core0 1000"));
        assert!(lines.contains(&"idle;native;core0 500"));
        assert!(lines.contains(&"shootdown_wait;enclave3;controller 250"));
    }

    #[test]
    fn folded_stacks_empty_snapshot_is_empty() {
        let snap = ProfileSnapshot {
            lanes: Vec::new(),
            overlay: Vec::new(),
        };
        assert_eq!(to_folded(&snap), "");
    }

    #[test]
    fn counter_trace_positions_windows_on_the_timeline() {
        use crate::profile::{Phase, WindowSnapshot, NUM_PHASES};
        let mut w = WindowSnapshot {
            index: 2,
            phase_cycles: [0; NUM_PHASES],
            dwell_p50: [0; NUM_PHASES],
            dwell_p99: [0; NUM_PHASES],
        };
        w.phase_cycles[Phase::GuestExec as usize] = 800;
        w.phase_cycles[Phase::RootExit as usize] = 200;
        let text = to_chrome_counter_trace(&[(1, vec![w])], 1000, 1_000_000_000);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with('}'));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"name\":\"phase cycles core1\""));
        // Window 2 × 1000 cycles at 1 GHz = 2000 ns = 2 us.
        assert!(text.contains("\"ts\":2.000"));
        assert!(text.contains("\"guest_exec\":800"));
        assert!(text.contains("\"root_exit\":200"));
        // Every phase appears as a series, even at zero.
        assert!(text.contains("\"throttled\":0"));
    }
}
