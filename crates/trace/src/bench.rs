//! covirt-bench result schema and noise-aware comparator.
//!
//! Every `figures` harness reduces to [`BenchRecord`]s — one per
//! (harness, metric) with the raw trial samples, their median, and their
//! median absolute deviation (MAD) — collected into a [`BenchSuite`]
//! stamped with the commit and a config fingerprint. The suite
//! serializes to JSON (`BENCH_covirt.json`, hand-rolled like the other
//! exporters so this crate stays dependency-free) and a committed
//! baseline copy (`bench/baseline.json`) feeds [`compare`]: a
//! direction-aware, MAD-scaled regression check with explicit verdicts
//! for new and missing metrics, replacing the per-harness threshold
//! constants that used to be scattered through the `figures` CLI and CI.
//!
//! ## Threshold model
//!
//! A metric regresses when its median moves in the *worse* direction
//! (per [`Direction`]) by more than
//!
//! ```text
//! max(rel_floor * |baseline.median|,          // declared noise floor
//!     sigmas * 1.4826 * max(base.mad, cur.mad), // measured run noise
//!     abs_floor)                               // absolute slack
//! ```
//!
//! `1.4826 * MAD` estimates the standard deviation of a normal sample,
//! so `sigmas` reads like a z-score. Zero-MAD metrics (deterministic
//! counts, single-trial records) fall back to the declared floors; a
//! count pinned at 0 with zero floors regresses on *any* increase.

use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into every suite; bump on breaking changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Which way "better" points for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, hit rates, speedups).
    Higher,
    /// Smaller is better (latency, error, exits, violations).
    Lower,
}

impl Direction {
    /// Serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }

    /// Parse a serialized name.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            _ => None,
        }
    }
}

/// Median of a sample (of a copy; the input is not reordered).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in bench samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation: `median(|x - median(xs)|)`. Zero for
/// empty, single-element, or constant samples.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Consistency constant turning a MAD into a normal-σ estimate.
pub const MAD_SIGMA: f64 = 1.4826;

/// One measured metric: raw trials plus the robust summary the
/// comparator works from and the noise declaration it gates with.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Harness that produced the metric (e.g. "exitless").
    pub harness: String,
    /// Metric name within the harness (e.g. "doorbell_p99_ns").
    pub metric: String,
    /// Unit string ("ns", "MB/s", "pct", "count", "ratio").
    pub unit: String,
    /// Which way better points.
    pub direction: Direction,
    /// Raw per-trial samples, in run order.
    pub samples: Vec<f64>,
    /// `median(samples)`.
    pub median: f64,
    /// `mad(samples)`.
    pub mad: f64,
    /// Declared relative noise floor (fraction of |baseline median|).
    /// Wall-clock metrics carry generous floors because the sim TSC is
    /// scaled host time, which varies across machines.
    pub rel_floor: f64,
    /// Declared absolute slack in the metric's own unit.
    pub abs_floor: f64,
    /// Whether the baseline comparator gates this metric. Informational
    /// metrics (raw machine-dependent throughput) are recorded and
    /// tracked but never fail the compare.
    pub gated: bool,
}

impl BenchRecord {
    /// Build a record from raw samples, computing median/MAD.
    #[allow(clippy::too_many_arguments)]
    pub fn from_samples(
        harness: &str,
        metric: &str,
        unit: &str,
        direction: Direction,
        rel_floor: f64,
        abs_floor: f64,
        gated: bool,
        samples: Vec<f64>,
    ) -> BenchRecord {
        let (m, d) = (median(&samples), mad(&samples));
        BenchRecord {
            harness: harness.to_string(),
            metric: metric.to_string(),
            unit: unit.to_string(),
            direction,
            samples,
            median: m,
            mad: d,
            rel_floor,
            abs_floor,
            gated,
        }
    }

    /// `harness.metric`, the key reports name metrics by.
    pub fn key(&self) -> String {
        format!("{}.{}", self.harness, self.metric)
    }

    /// Worst-case sample for absolute gating: the sample farthest in the
    /// *worse* direction (max for lower-is-better, min for higher).
    pub fn worst_sample(&self) -> f64 {
        let fold = match self.direction {
            Direction::Lower => f64::max,
            Direction::Higher => f64::min,
        };
        self.samples.iter().copied().fold(self.median, fold)
    }

    /// Best-case sample: the sample farthest in the *better* direction.
    /// Capability gates on wall-clock-noisy metrics ("the off-path CAN
    /// run within 2%") judge this, the STREAM best-of convention.
    pub fn best_sample(&self) -> f64 {
        let fold = match self.direction {
            Direction::Lower => f64::min,
            Direction::Higher => f64::max,
        };
        self.samples.iter().copied().fold(self.median, fold)
    }
}

/// A full run of the suite: provenance plus every record.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSuite {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema: u32,
    /// Git commit the suite ran at ("unknown" outside a checkout).
    pub commit: String,
    /// Human-readable configuration summary (trials, workload sizing).
    pub config: String,
    /// FNV-1a of `config`: baselines with a different fingerprint were
    /// measured under different parameters and must be re-blessed, not
    /// compared.
    pub fingerprint: u64,
    /// The records, in harness order.
    pub records: Vec<BenchRecord>,
}

/// FNV-1a, the fingerprint hash (stable, dependency-free).
pub fn fingerprint(config: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in config.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl BenchSuite {
    /// Assemble a suite, stamping schema + fingerprint.
    pub fn new(commit: String, config: String, records: Vec<BenchRecord>) -> BenchSuite {
        BenchSuite {
            schema: SCHEMA_VERSION,
            commit,
            fingerprint: fingerprint(&config),
            config,
            records,
        }
    }

    /// Look up a record by harness and metric.
    pub fn get(&self, harness: &str, metric: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.harness == harness && r.metric == metric)
    }

    /// Distinct harness names, in record order.
    pub fn harnesses(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.harness.as_str()) {
                out.push(&r.harness);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// JSON serialization (hand-rolled, matching the exporters' style).

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Format an f64 so it round-trips: integral values print without a
/// fraction, everything else with enough digits to reparse exactly.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        // NaN is not valid JSON; record it as null and reparse as NaN.
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        let s = format!("{v}");
        debug_assert_eq!(s.parse::<f64>().ok(), Some(v));
        s
    }
}

impl BenchSuite {
    /// Serialize to the `BENCH_covirt.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.records.len() * 256);
        out.push_str(&format!(
            "{{\n  \"schema\": {},\n  \"commit\": \"",
            self.schema
        ));
        escape_into(&self.commit, &mut out);
        out.push_str("\",\n  \"config\": \"");
        escape_into(&self.config, &mut out);
        // Hex string: u64 fingerprints exceed f64 integer precision,
        // so a bare JSON number would not round-trip.
        out.push_str(&format!(
            "\",\n  \"fingerprint\": \"{:016x}\",\n  \"records\": [\n",
            self.fingerprint
        ));
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {\"harness\": \"");
            escape_into(&r.harness, &mut out);
            out.push_str("\", \"metric\": \"");
            escape_into(&r.metric, &mut out);
            out.push_str("\", \"unit\": \"");
            escape_into(&r.unit, &mut out);
            out.push_str(&format!(
                "\", \"direction\": \"{}\", \"rel_floor\": {}, \"abs_floor\": {}, \"gated\": {}, \"median\": {}, \"mad\": {}, \"samples\": [{}]}}{}\n",
                r.direction.name(),
                fmt_f64(r.rel_floor),
                fmt_f64(r.abs_floor),
                r.gated,
                fmt_f64(r.median),
                fmt_f64(r.mad),
                r.samples
                    .iter()
                    .map(|s| fmt_f64(*s))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a suite back from its JSON form.
    pub fn from_json(text: &str) -> Result<BenchSuite, ParseError> {
        let v = json::parse(text)?;
        let obj = v.as_object("top level")?;
        let schema = get(obj, "schema")?.as_u64("schema")? as u32;
        if schema > SCHEMA_VERSION {
            return Err(ParseError(format!(
                "schema {schema} is newer than supported {SCHEMA_VERSION}"
            )));
        }
        let commit = get(obj, "commit")?.as_str("commit")?.to_string();
        let config = get(obj, "config")?.as_str("config")?.to_string();
        let fp_str = get(obj, "fingerprint")?.as_str("fingerprint")?;
        let fp = u64::from_str_radix(fp_str, 16)
            .map_err(|_| ParseError(format!("bad fingerprint {fp_str:?}")))?;
        let mut records = Vec::new();
        for (i, rv) in get(obj, "records")?.as_array("records")?.iter().enumerate() {
            let r = rv.as_object(&format!("records[{i}]"))?;
            let dir_name = get(r, "direction")?.as_str("direction")?;
            let direction = Direction::parse(dir_name)
                .ok_or_else(|| ParseError(format!("bad direction {dir_name:?}")))?;
            let samples: Vec<f64> = get(r, "samples")?
                .as_array("samples")?
                .iter()
                .map(|s| s.as_f64("sample"))
                .collect::<Result<_, _>>()?;
            records.push(BenchRecord {
                harness: get(r, "harness")?.as_str("harness")?.to_string(),
                metric: get(r, "metric")?.as_str("metric")?.to_string(),
                unit: get(r, "unit")?.as_str("unit")?.to_string(),
                direction,
                median: get(r, "median")?.as_f64("median")?,
                mad: get(r, "mad")?.as_f64("mad")?,
                rel_floor: get(r, "rel_floor")?.as_f64("rel_floor")?,
                abs_floor: get(r, "abs_floor")?.as_f64("abs_floor")?,
                gated: get(r, "gated")?.as_bool("gated")?,
                samples,
            });
        }
        Ok(BenchSuite {
            schema,
            commit,
            config,
            fingerprint: fp,
            records,
        })
    }
}

fn get<'a>(
    obj: &'a BTreeMap<String, json::Value>,
    key: &str,
) -> Result<&'a json::Value, ParseError> {
    obj.get(key)
        .ok_or_else(|| ParseError(format!("missing field {key:?}")))
}

/// A schema or syntax error while reading a suite file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Minimal recursive-descent JSON reader — just enough for the bench
/// schema (objects, arrays, strings, numbers, booleans, null).
mod json {
    use super::ParseError;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, ParseError> {
            match self {
                Value::Obj(m) => Ok(m),
                v => Err(ParseError(format!("{what}: expected object, got {v:?}"))),
            }
        }
        pub fn as_array(&self, what: &str) -> Result<&Vec<Value>, ParseError> {
            match self {
                Value::Arr(a) => Ok(a),
                v => Err(ParseError(format!("{what}: expected array, got {v:?}"))),
            }
        }
        pub fn as_str(&self, what: &str) -> Result<&str, ParseError> {
            match self {
                Value::Str(s) => Ok(s),
                v => Err(ParseError(format!("{what}: expected string, got {v:?}"))),
            }
        }
        pub fn as_f64(&self, what: &str) -> Result<f64, ParseError> {
            match self {
                Value::Num(n) => Ok(*n),
                Value::Null => Ok(f64::NAN), // NaN serializes as null
                v => Err(ParseError(format!("{what}: expected number, got {v:?}"))),
            }
        }
        pub fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
            let f = self.as_f64(what)?;
            if f >= 0.0 && f == f.trunc() && f <= u64::MAX as f64 {
                Ok(f as u64)
            } else {
                Err(ParseError(format!(
                    "{what}: expected unsigned int, got {f}"
                )))
            }
        }
        pub fn as_bool(&self, what: &str) -> Result<bool, ParseError> {
            match self {
                Value::Bool(b) => Ok(*b),
                v => Err(ParseError(format!("{what}: expected bool, got {v:?}"))),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseError(format!(
                "trailing data at byte {} of {}",
                p.pos,
                p.bytes.len()
            )));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(ParseError(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                )))
            }
        }

        fn eat_literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, ParseError> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(ParseError(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                ))),
            }
        }

        fn object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(ParseError(format!("bad object at byte {}", self.pos))),
                }
            }
        }

        fn array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(ParseError(format!("bad array at byte {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(ParseError("unterminated string".into())),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| ParseError("bad \\u escape".into()))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| ParseError("bad \\u escape".into()))?,
                                    16,
                                )
                                .map_err(|_| ParseError("bad \\u escape".into()))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| ParseError("bad \\u code point".into()))?,
                                );
                                self.pos += 4;
                            }
                            c => {
                                return Err(ParseError(format!(
                                    "bad escape {:?}",
                                    c.map(|c| c as char)
                                )))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| ParseError("invalid UTF-8".into()))?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| ParseError(format!("bad number {s:?}")))
        }
    }
}

// ---------------------------------------------------------------------------
// Comparator.

/// Knobs of the regression comparison.
#[derive(Clone, Copy, Debug)]
pub struct ComparePolicy {
    /// MAD multiplier (z-score-like) for the measured-noise component.
    pub sigmas: f64,
    /// Whether a gated baseline metric missing from the current run
    /// fails the comparison (it should: silently dropping a metric is
    /// how regressions hide).
    pub fail_on_missing: bool,
}

impl Default for ComparePolicy {
    fn default() -> Self {
        ComparePolicy {
            sigmas: 5.0,
            fail_on_missing: true,
        }
    }
}

/// Outcome for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold of the baseline.
    Pass,
    /// Moved past threshold in the *better* direction (worth re-blessing).
    Improved,
    /// Moved past threshold in the worse direction.
    Regressed,
    /// Present now, absent from the baseline (new metric; bless to track).
    New,
    /// Present in the baseline, absent now.
    Missing,
    /// Unit or direction changed between baseline and current.
    Incomparable,
    /// Recorded but not gated; informational trajectory only.
    Ungated,
}

impl Verdict {
    /// Display tag.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::New => "new",
            Verdict::Missing => "MISSING",
            Verdict::Incomparable => "INCOMPARABLE",
            Verdict::Ungated => "info",
        }
    }
}

/// One metric's comparison row.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// `harness.metric`.
    pub key: String,
    /// Unit (from whichever side has the record).
    pub unit: String,
    /// Baseline median, when the baseline has the metric.
    pub baseline: Option<f64>,
    /// Current median, when the current run has the metric.
    pub current: Option<f64>,
    /// Amount the current median is worse than baseline (direction-aware;
    /// negative = better). 0 when either side is missing.
    pub worse_by: f64,
    /// The threshold `worse_by` was judged against.
    pub threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// A full suite-vs-baseline comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Baselines measured under a different config fingerprint cannot be
    /// compared; the comparison fails wholesale and names both configs.
    pub config_mismatch: Option<(String, String)>,
    /// Per-metric rows, baseline order then new metrics.
    pub deltas: Vec<MetricDelta>,
    /// The policy used.
    pub policy: ComparePolicy,
}

impl Comparison {
    /// True when nothing regressed, nothing gated went missing or
    /// incomparable, and the configs matched.
    pub fn ok(&self) -> bool {
        self.config_mismatch.is_none() && self.failures().is_empty()
    }

    /// The failing rows.
    pub fn failures(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| {
                matches!(
                    d.verdict,
                    Verdict::Regressed | Verdict::Incomparable | Verdict::Missing
                )
            })
            .collect()
    }

    /// Rows that moved enough that the baseline is stale (improvements +
    /// new metrics) — the re-bless hint.
    pub fn stale(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Improved | Verdict::New))
            .collect()
    }

    /// Render the comparison table plus verdict summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some((base, cur)) = &self.config_mismatch {
            out.push_str(&format!(
                "CONFIG MISMATCH: baseline measured under a different configuration.\n  baseline: {base}\n  current:  {cur}\n  re-bless the baseline (figures bench --bless) after a deliberate config change.\n"
            ));
            return out;
        }
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>12} {:>12}  verdict\n",
            "metric", "baseline", "current", "worse-by", "threshold"
        ));
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.4}"),
            None => "-".to_string(),
        };
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<40} {:>14} {:>14} {:>12.4} {:>12.4}  {}\n",
                d.key,
                fmt_opt(d.baseline),
                fmt_opt(d.current),
                d.worse_by,
                d.threshold,
                d.verdict.name()
            ));
        }
        let fails = self.failures();
        if fails.is_empty() {
            out.push_str("comparison: OK — no gated metric regressed\n");
        } else {
            out.push_str(&format!(
                "comparison: FAIL — {} metric(s): {}\n",
                fails.len(),
                fails
                    .iter()
                    .map(|d| format!("{} ({})", d.key, d.verdict.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let stale = self.stale();
        if !stale.is_empty() {
            out.push_str(&format!(
                "note: {} metric(s) improved or are new; consider re-blessing the baseline\n",
                stale.len()
            ));
        }
        out
    }
}

/// Direction-aware "how much worse is `cur` than `base`".
pub fn worse_by(direction: Direction, base: f64, cur: f64) -> f64 {
    match direction {
        Direction::Higher => base - cur,
        Direction::Lower => cur - base,
    }
}

/// Regression threshold for a (baseline, current) record pair: the max
/// of the declared relative floor, the MAD-scaled measured noise, and
/// the declared absolute floor (see module docs).
pub fn threshold(policy: &ComparePolicy, base: &BenchRecord, cur: &BenchRecord) -> f64 {
    let rel = base.rel_floor.max(cur.rel_floor) * base.median.abs();
    let noise = policy.sigmas * MAD_SIGMA * base.mad.max(cur.mad);
    let abs = base.abs_floor.max(cur.abs_floor);
    rel.max(noise).max(abs)
}

/// Compare a current suite against a committed baseline.
pub fn compare(baseline: &BenchSuite, current: &BenchSuite, policy: ComparePolicy) -> Comparison {
    if baseline.fingerprint != current.fingerprint {
        return Comparison {
            config_mismatch: Some((baseline.config.clone(), current.config.clone())),
            deltas: Vec::new(),
            policy,
        };
    }
    let mut deltas = Vec::new();
    for base in &baseline.records {
        let key = base.key();
        let cur = current.get(&base.harness, &base.metric);
        let delta = match cur {
            None => MetricDelta {
                key,
                unit: base.unit.clone(),
                baseline: Some(base.median),
                current: None,
                worse_by: 0.0,
                threshold: 0.0,
                verdict: if base.gated && policy.fail_on_missing {
                    Verdict::Missing
                } else {
                    Verdict::Ungated
                },
            },
            Some(cur) if cur.unit != base.unit || cur.direction != base.direction => MetricDelta {
                key,
                unit: base.unit.clone(),
                baseline: Some(base.median),
                current: Some(cur.median),
                worse_by: 0.0,
                threshold: 0.0,
                verdict: Verdict::Incomparable,
            },
            Some(cur) => {
                let w = worse_by(base.direction, base.median, cur.median);
                let t = threshold(&policy, base, cur);
                let verdict = if !(base.gated && cur.gated) {
                    Verdict::Ungated
                } else if w > t {
                    Verdict::Regressed
                } else if -w > t {
                    Verdict::Improved
                } else {
                    Verdict::Pass
                };
                MetricDelta {
                    key,
                    unit: base.unit.clone(),
                    baseline: Some(base.median),
                    current: Some(cur.median),
                    worse_by: w,
                    threshold: t,
                    verdict,
                }
            }
        };
        deltas.push(delta);
    }
    for cur in &current.records {
        if baseline.get(&cur.harness, &cur.metric).is_none() {
            deltas.push(MetricDelta {
                key: cur.key(),
                unit: cur.unit.clone(),
                baseline: None,
                current: Some(cur.median),
                worse_by: 0.0,
                threshold: 0.0,
                verdict: Verdict::New,
            });
        }
    }
    Comparison {
        config_mismatch: None,
        deltas,
        policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(harness: &str, metric: &str, dir: Direction, samples: &[f64]) -> BenchRecord {
        BenchRecord::from_samples(harness, metric, "u", dir, 0.0, 0.0, true, samples.to_vec())
    }

    fn rec_floors(
        metric: &str,
        dir: Direction,
        rel: f64,
        abs: f64,
        samples: &[f64],
    ) -> BenchRecord {
        BenchRecord::from_samples("h", metric, "u", dir, rel, abs, true, samples.to_vec())
    }

    fn suite(records: Vec<BenchRecord>) -> BenchSuite {
        BenchSuite::new("deadbeef".into(), "cfg".into(), records)
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(mad(&[5.0]), 0.0, "single trial has zero MAD");
        assert_eq!(mad(&[4.0, 4.0, 4.0]), 0.0, "constant sample has zero MAD");
        // median 3, deviations [2,1,0,1,2] -> mad 1
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }

    #[test]
    fn record_summary_and_worst_sample() {
        let r = rec("h", "m", Direction::Lower, &[3.0, 1.0, 7.0]);
        assert_eq!(r.median, 3.0);
        assert_eq!(r.mad, 2.0);
        assert_eq!(r.worst_sample(), 7.0, "lower-is-better: worst is max");
        assert_eq!(r.best_sample(), 1.0, "lower-is-better: best is min");
        let r = rec("h", "m", Direction::Higher, &[3.0, 1.0, 7.0]);
        assert_eq!(r.worst_sample(), 1.0, "higher-is-better: worst is min");
        assert_eq!(r.best_sample(), 7.0, "higher-is-better: best is max");
        assert_eq!(r.key(), "h.m");
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let s = suite(vec![
            rec(
                "exitless",
                "doorbell_p99_ns",
                Direction::Lower,
                &[512.0, 498.5, 520.25],
            ),
            BenchRecord::from_samples(
                "scaling",
                "resolve_hit_rate",
                "ratio",
                Direction::Higher,
                0.02,
                0.005,
                true,
                vec![0.9612345678901234, 0.97],
            ),
            BenchRecord::from_samples(
                "quote\"s\\and\nnewlines",
                "m",
                "count",
                Direction::Lower,
                0.0,
                0.0,
                false,
                vec![0.0],
            ),
        ]);
        let text = s.to_json();
        let back = BenchSuite::from_json(&text).expect("reparse");
        assert_eq!(back, s);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(BenchSuite::from_json("").is_err());
        assert!(BenchSuite::from_json("{}").is_err(), "missing fields");
        assert!(BenchSuite::from_json("{\"schema\": 1").is_err());
        assert!(BenchSuite::from_json("[1,2,3]").is_err(), "not an object");
        let newer = suite(vec![]).to_json().replace(
            &format!("\"schema\": {SCHEMA_VERSION}"),
            &format!("\"schema\": {}", SCHEMA_VERSION + 1),
        );
        assert!(
            BenchSuite::from_json(&newer).is_err(),
            "newer schema must be rejected"
        );
    }

    #[test]
    fn fingerprint_tracks_config() {
        let a = BenchSuite::new("c".into(), "trials=3".into(), vec![]);
        let b = BenchSuite::new("c".into(), "trials=5".into(), vec![]);
        assert_ne!(a.fingerprint, b.fingerprint);
        let cmp = compare(&a, &b, ComparePolicy::default());
        assert!(cmp.config_mismatch.is_some());
        assert!(!cmp.ok());
        assert!(cmp.render().contains("CONFIG MISMATCH"));
    }

    #[test]
    fn identical_suites_pass() {
        let s = suite(vec![
            rec("h", "lat", Direction::Lower, &[10.0, 11.0, 9.0]),
            rec("h", "bw", Direction::Higher, &[100.0, 101.0]),
        ]);
        let cmp = compare(&s, &s.clone(), ComparePolicy::default());
        assert!(cmp.ok(), "{}", cmp.render());
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Pass));
    }

    #[test]
    fn zero_mad_zero_floor_count_regresses_on_any_increase() {
        // A deterministic count pinned at 0 (e.g. command-path VM exits):
        // MAD 0, floors 0 -> any increase must regress.
        let base = suite(vec![rec(
            "exitless",
            "cmd_exits",
            Direction::Lower,
            &[0.0, 0.0, 0.0],
        )]);
        let cur = suite(vec![rec(
            "exitless",
            "cmd_exits",
            Direction::Lower,
            &[1.0, 1.0, 1.0],
        )]);
        let cmp = compare(&base, &cur, ComparePolicy::default());
        assert!(!cmp.ok());
        assert_eq!(cmp.failures()[0].key, "exitless.cmd_exits");
        assert_eq!(cmp.failures()[0].verdict, Verdict::Regressed);
        assert!(
            cmp.render().contains("exitless.cmd_exits"),
            "failure is named"
        );
    }

    #[test]
    fn rel_floor_absorbs_small_drift_on_zero_mad_metrics() {
        let base = suite(vec![rec_floors(
            "rate",
            Direction::Higher,
            0.05,
            0.0,
            &[1000.0],
        )]);
        let within = suite(vec![rec_floors(
            "rate",
            Direction::Higher,
            0.05,
            0.0,
            &[960.0],
        )]);
        let beyond = suite(vec![rec_floors(
            "rate",
            Direction::Higher,
            0.05,
            0.0,
            &[940.0],
        )]);
        assert!(compare(&base, &within, ComparePolicy::default()).ok());
        let cmp = compare(&base, &beyond, ComparePolicy::default());
        assert!(!cmp.ok(), "6% drop must beat a 5% floor");
        assert_eq!(cmp.failures()[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn abs_floor_governs_zero_baseline_metrics() {
        // baseline median 0 -> rel component is 0 regardless of floor.
        let base = suite(vec![rec_floors(
            "err_pct",
            Direction::Lower,
            0.5,
            1.0,
            &[0.0],
        )]);
        let small = suite(vec![rec_floors(
            "err_pct",
            Direction::Lower,
            0.5,
            1.0,
            &[0.8],
        )]);
        let big = suite(vec![rec_floors(
            "err_pct",
            Direction::Lower,
            0.5,
            1.0,
            &[1.5],
        )]);
        assert!(compare(&base, &small, ComparePolicy::default()).ok());
        assert!(!compare(&base, &big, ComparePolicy::default()).ok());
    }

    #[test]
    fn mad_widens_threshold_for_noisy_metrics() {
        // Noisy baseline: samples spread, MAD > 0. A move that a zero-MAD
        // metric would fail is absorbed by the measured noise.
        let noisy = rec(
            "h",
            "lat",
            Direction::Lower,
            &[100.0, 80.0, 120.0, 90.0, 110.0],
        );
        assert!(noisy.mad > 0.0);
        let base = suite(vec![noisy]);
        let cur = suite(vec![rec("h", "lat", Direction::Lower, &[130.0])]);
        let cmp = compare(&base, &cur, ComparePolicy::default());
        assert!(
            cmp.ok(),
            "30% move within 5 sigma of MAD {} must pass: {}",
            mad(&[100.0, 80.0, 120.0, 90.0, 110.0]),
            cmp.render()
        );
        // But a quiet baseline with the same medians fails.
        let quiet = suite(vec![rec(
            "h",
            "lat",
            Direction::Lower,
            &[100.0, 100.0, 100.0],
        )]);
        assert!(!compare(&quiet, &cur, ComparePolicy::default()).ok());
    }

    #[test]
    fn single_trial_records_compare_via_floors_only() {
        let base = suite(vec![rec_floors("x", Direction::Lower, 0.1, 0.0, &[50.0])]);
        let cur_ok = suite(vec![rec_floors("x", Direction::Lower, 0.1, 0.0, &[54.0])]);
        let cur_bad = suite(vec![rec_floors("x", Direction::Lower, 0.1, 0.0, &[56.0])]);
        assert_eq!(mad(&[50.0]), 0.0);
        assert!(compare(&base, &cur_ok, ComparePolicy::default()).ok());
        assert!(!compare(&base, &cur_bad, ComparePolicy::default()).ok());
    }

    #[test]
    fn missing_in_current_fails_and_is_named() {
        let base = suite(vec![
            rec("h", "kept", Direction::Lower, &[1.0]),
            rec("h", "dropped", Direction::Lower, &[1.0]),
        ]);
        let cur = suite(vec![rec("h", "kept", Direction::Lower, &[1.0])]);
        let cmp = compare(&base, &cur, ComparePolicy::default());
        assert!(!cmp.ok());
        let fails = cmp.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].key, "h.dropped");
        assert_eq!(fails[0].verdict, Verdict::Missing);
        // An ungated metric may come and go without failing.
        let mut ungated = rec("h", "info", Direction::Lower, &[1.0]);
        ungated.gated = false;
        let base2 = suite(vec![rec("h", "kept", Direction::Lower, &[1.0]), ungated]);
        assert!(compare(&base2, &cur, ComparePolicy::default()).ok());
    }

    #[test]
    fn new_metric_passes_but_is_flagged_stale() {
        let base = suite(vec![rec("h", "old", Direction::Lower, &[1.0])]);
        let cur = suite(vec![
            rec("h", "old", Direction::Lower, &[1.0]),
            rec("h", "brand_new", Direction::Higher, &[9.0]),
        ]);
        let cmp = compare(&base, &cur, ComparePolicy::default());
        assert!(cmp.ok(), "new metrics must not fail the gate");
        assert_eq!(cmp.stale().len(), 1);
        assert_eq!(cmp.stale()[0].verdict, Verdict::New);
        assert!(cmp.render().contains("re-blessing"));
    }

    #[test]
    fn direction_or_unit_change_is_incomparable() {
        let base = suite(vec![rec("h", "m", Direction::Lower, &[1.0])]);
        let mut flipped = rec("h", "m", Direction::Higher, &[1.0]);
        let cmp = compare(
            &base,
            &suite(vec![flipped.clone()]),
            ComparePolicy::default(),
        );
        assert!(!cmp.ok());
        assert_eq!(cmp.failures()[0].verdict, Verdict::Incomparable);
        flipped.direction = Direction::Lower;
        flipped.unit = "other".into();
        let cmp = compare(&base, &suite(vec![flipped]), ComparePolicy::default());
        assert_eq!(cmp.failures()[0].verdict, Verdict::Incomparable);
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let base = suite(vec![rec_floors(
            "lat",
            Direction::Lower,
            0.05,
            0.0,
            &[100.0],
        )]);
        let cur = suite(vec![rec_floors(
            "lat",
            Direction::Lower,
            0.05,
            0.0,
            &[50.0],
        )]);
        let cmp = compare(&base, &cur, ComparePolicy::default());
        assert!(cmp.ok());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Improved);
        assert!(cmp.stale().len() == 1);
    }

    #[test]
    fn ungated_metrics_never_regress() {
        let mut b = rec("h", "wall_ms", Direction::Lower, &[10.0]);
        b.gated = false;
        let mut c = rec("h", "wall_ms", Direction::Lower, &[10_000.0]);
        c.gated = false;
        let cmp = compare(&suite(vec![b]), &suite(vec![c]), ComparePolicy::default());
        assert!(cmp.ok());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Ungated);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Samples as small integers scaled, avoiding NaN/inf.
        fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
            proptest::collection::vec((0u64..2_000_000).prop_map(|v| v as f64 / 100.0), 1..12)
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

            /// MAD is non-negative and zero for constant samples.
            #[test]
            fn mad_nonnegative(xs in samples_strategy()) {
                prop_assert!(mad(&xs) >= 0.0);
                let c = vec![xs[0]; xs.len()];
                prop_assert_eq!(mad(&c), 0.0);
            }

            /// The median lies within the sample's range.
            #[test]
            fn median_within_range(xs in samples_strategy()) {
                let m = median(&xs);
                let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(m >= lo && m <= hi, "median {} outside [{}, {}]", m, lo, hi);
            }

            /// Shifting every sample by a constant shifts the median and
            /// leaves the MAD unchanged (robust-statistic invariants the
            /// threshold math relies on).
            #[test]
            fn mad_shift_invariant(xs in samples_strategy(), shift in 0u64..1000) {
                let shift = shift as f64;
                let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
                prop_assert!((mad(&shifted) - mad(&xs)).abs() < 1e-9);
                prop_assert!((median(&shifted) - (median(&xs) + shift)).abs() < 1e-9);
            }

            /// worse_by flips sign exactly under direction reversal.
            #[test]
            fn direction_flip_negates_worse_by(
                base in 0u64..1_000_000,
                cur in 0u64..1_000_000,
            ) {
                let (b, c) = (base as f64, cur as f64);
                prop_assert_eq!(
                    worse_by(Direction::Higher, b, c),
                    -worse_by(Direction::Lower, b, c)
                );
            }

            /// Threshold is monotone in the MAD: noisier measurements can
            /// only widen the acceptance band.
            #[test]
            fn threshold_monotone_in_mad(
                xs in samples_strategy(),
                extra in 1u64..1_000_000,
            ) {
                let policy = ComparePolicy::default();
                let quiet = BenchRecord::from_samples(
                    "h", "m", "u", Direction::Lower, 0.05, 0.0, true, xs.clone());
                // Widen the spread around the same median.
                let m = median(&xs);
                let mut wide = xs.clone();
                wide.push(m + extra as f64);
                wide.push(m - extra as f64);
                let noisy = BenchRecord::from_samples(
                    "h", "m", "u", Direction::Lower, 0.05, 0.0, true, wide);
                prop_assert!(noisy.mad >= quiet.mad);
                prop_assert!(
                    threshold(&policy, &noisy, &noisy) >= threshold(&policy, &quiet, &quiet)
                );
            }

            /// A suite always passes against itself (reflexivity), for any
            /// mix of directions and floors.
            #[test]
            fn self_compare_passes(
                xs in samples_strategy(),
                higher in any::<bool>(),
                rel in 0u64..100,
                abs in 0u64..100,
            ) {
                let dir = if higher { Direction::Higher } else { Direction::Lower };
                let r = BenchRecord::from_samples(
                    "h", "m", "u", dir, rel as f64 / 100.0, abs as f64, true, xs);
                let s = BenchSuite::new("c".into(), "cfg".into(), vec![r]);
                let cmp = compare(&s, &s.clone(), ComparePolicy::default());
                prop_assert!(cmp.ok(), "self-compare failed: {}", cmp.render());
            }

            /// Regression detection is symmetric under direction flip:
            /// if (base -> cur) regresses for higher-is-better, then
            /// (base -> cur) with the values' roles preserved but the
            /// direction flipped reports the mirrored verdict set.
            #[test]
            fn direction_flip_swaps_regressed_and_improved(
                base in 0u64..1_000_000,
                cur in 0u64..1_000_000,
            ) {
                let mk = |dir| {
                    let b = BenchRecord::from_samples(
                        "h", "m", "u", dir, 0.0, 0.0, true, vec![base as f64]);
                    let c = BenchRecord::from_samples(
                        "h", "m", "u", dir, 0.0, 0.0, true, vec![cur as f64]);
                    let cmp = compare(
                        &BenchSuite::new("x".into(), "cfg".into(), vec![b]),
                        &BenchSuite::new("x".into(), "cfg".into(), vec![c]),
                        ComparePolicy::default(),
                    );
                    cmp.deltas[0].verdict
                };
                let hi = mk(Direction::Higher);
                let lo = mk(Direction::Lower);
                match hi {
                    Verdict::Regressed => prop_assert_eq!(lo, Verdict::Improved),
                    Verdict::Improved => prop_assert_eq!(lo, Verdict::Regressed),
                    other => prop_assert_eq!(lo, other),
                }
            }

            /// JSON round-trips arbitrary records exactly.
            #[test]
            fn json_roundtrip(
                xs in samples_strategy(),
                name in "[a-z0-9_.-]{1,24}",
                gated in any::<bool>(),
            ) {
                let r = BenchRecord::from_samples(
                    "h", &name, "u", Direction::Lower, 0.125, 0.25, gated, xs);
                let s = BenchSuite::new("commit".into(), "cfg".into(), vec![r]);
                let back = BenchSuite::from_json(&s.to_json());
                prop_assert!(back.is_ok(), "{:?}", back.err());
                prop_assert_eq!(back.unwrap(), s);
            }
        }
    }
}
