//! Self-healing control feedback: turn live audit verdicts into host
//! control actions.
//!
//! The covirt-audit engine tails the flight recorder and produces a
//! [`TailVerdict`] per batch; this module closes the loop by mapping
//! verdicts onto the three control levers the Pisces host exposes:
//!
//! * **Throttle** — an enclave whose p99 blows a configured SLO budget
//!   (shootdown RTT, exit handle time, command wait) gets its throttle
//!   flag set; the flag clears when the enclave's p99 recovers.
//! * **Quarantine, then teardown** — a confirmed protection violation
//!   (fault report, grant inside a stale-TLB window, orphan teardown
//!   with complete evidence) quarantines the attributed enclave — no
//!   further grants — and drives the fault path to reclaim its
//!   resources. Quarantine is one-way and acted on exactly once.
//! * **Shed admission** — when cumulative ring drops cross a threshold,
//!   observability is too degraded to vouch for new tenants: enclave
//!   admission is refused. Sticky until an operator calls
//!   [`PiscesHost::set_admission_shed`]`(false)`.
//!
//! Absence-based findings (e.g. an orphan teardown) are only acted on
//! while the evidence is complete — if the capture dropped events, the
//! exonerating record may be among them, and tearing an enclave down on
//! missing evidence would be a protection failure of its own.

use crate::enclave::EnclaveId;
use crate::host::PiscesHost;
use covirt_trace::audit::{TailVerdict, ViolationKind};
use covirt_trace::{Phase, PhaseProfiler};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct RemediationConfig {
    /// Cumulative ring drops above which admission is shed.
    pub shed_drop_threshold: u64,
}

impl Default for RemediationConfig {
    fn default() -> RemediationConfig {
        RemediationConfig {
            shed_drop_threshold: 4096, // one default lane's worth
        }
    }
}

/// One control action the policy took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemediationAction {
    /// Enclave throttled: an SLO p99 crossed its budget.
    Throttle {
        /// The degraded enclave.
        enclave: u64,
        /// The budgets crossed.
        why: String,
    },
    /// Throttle lifted: the enclave's p99 recovered.
    Unthrottle {
        /// The recovered enclave.
        enclave: u64,
    },
    /// Enclave quarantined on a confirmed protection violation.
    Quarantine {
        /// The violating enclave.
        enclave: u64,
        /// The violation that confirmed it.
        why: String,
    },
    /// Quarantined enclave's resources reclaimed via the fault path.
    Teardown {
        /// The torn-down enclave.
        enclave: u64,
    },
    /// New enclave admission shed: observability degraded.
    ShedAdmission {
        /// Cumulative drops at the moment of shedding.
        dropped: u64,
    },
}

impl fmt::Display for RemediationAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemediationAction::Throttle { enclave, why } => {
                write!(f, "throttle enclave {enclave} ({why})")
            }
            RemediationAction::Unthrottle { enclave } => {
                write!(f, "unthrottle enclave {enclave} (p99 recovered)")
            }
            RemediationAction::Quarantine { enclave, why } => {
                write!(f, "quarantine enclave {enclave} ({why})")
            }
            RemediationAction::Teardown { enclave } => {
                write!(f, "teardown enclave {enclave} (fault-path reclaim)")
            }
            RemediationAction::ShedAdmission { dropped } => {
                write!(f, "shed admission ({dropped} events dropped)")
            }
        }
    }
}

/// Shared TSC source the policy samples when timing throttle intervals.
pub type TscSource = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Feeds [`TailVerdict`]s back into the host. One policy instance per
/// tailing loop; it remembers what it already did so each condition is
/// acted on exactly once per transition.
pub struct RemediationPolicy {
    host: Arc<PiscesHost>,
    cfg: RemediationConfig,
    /// Enclaves this policy is currently throttling.
    throttled: HashSet<u64>,
    /// Cumulative drops across all verdicts seen.
    dropped_total: u64,
    /// Every action taken, in order.
    log: Vec<RemediationAction>,
    /// Optional cycle profiler: time spent throttled is attributed to
    /// the enclave as [`Phase::Throttled`] overlay cycles.
    profiler: Option<(Arc<PhaseProfiler>, TscSource)>,
    /// TSC at which each currently-throttled enclave entered throttle.
    throttle_started: HashMap<u64, u64>,
}

impl RemediationPolicy {
    /// A policy driving `host`.
    pub fn new(host: Arc<PiscesHost>, cfg: RemediationConfig) -> RemediationPolicy {
        RemediationPolicy {
            host,
            cfg,
            throttled: HashSet::new(),
            dropped_total: 0,
            log: Vec::new(),
            profiler: None,
            throttle_started: HashMap::new(),
        }
    }

    /// Attach a cycle profiler. Every throttle interval this policy
    /// imposes is attributed to the throttled enclave as
    /// [`Phase::Throttled`] overlay cycles, stamped with `now` (a TSC
    /// source — the policy runs off-core, so it cannot read a core's
    /// own clock).
    pub fn attach_profiler(&mut self, profiler: Arc<PhaseProfiler>, now: TscSource) {
        self.profiler = Some((profiler, now));
    }

    fn throttle_mark(&mut self, enclave: u64) {
        if let Some((_, now)) = &self.profiler {
            self.throttle_started.insert(enclave, now());
        }
    }

    fn throttle_close(&mut self, enclave: u64) {
        let Some((prof, now)) = &self.profiler else {
            return;
        };
        if let Some(start) = self.throttle_started.remove(&enclave) {
            prof.attribute(enclave, Phase::Throttled, now().saturating_sub(start));
        }
    }

    /// Close every open throttle interval, attributing cycles up to
    /// now. Call before snapshotting the profiler; intervals for
    /// still-throttled enclaves restart from the flush point.
    pub fn flush_throttle_intervals(&mut self) {
        let open: Vec<u64> = self.throttle_started.keys().copied().collect();
        for id in open {
            self.throttle_close(id);
            self.throttle_mark(id);
        }
    }

    /// Apply one verdict; returns the actions it triggered (empty on a
    /// healthy batch).
    pub fn apply(&mut self, verdict: &TailVerdict) -> Vec<RemediationAction> {
        let mut actions = Vec::new();
        self.dropped_total += verdict.dropped_since;

        // Quarantine-then-teardown on confirmed protection violations.
        for v in &verdict.new_violations {
            let protection = matches!(
                v.kind,
                ViolationKind::ProtectionFault
                    | ViolationKind::UseAfterReclaim
                    | ViolationKind::OrphanTeardown
            );
            // Absence-based findings are unconfirmed while events are
            // missing — never destroy an enclave on missing evidence.
            let confirmed = !v.absence_based || !verdict.evidence_incomplete;
            let Some(id) = v.enclave else { continue };
            if !(protection && confirmed) {
                continue;
            }
            let Ok(enclave) = self.host.enclave(EnclaveId(id)) else {
                continue;
            };
            if enclave.quarantine() {
                // A quarantined enclave is being torn down; close any
                // open throttle interval so its cycles are not lost.
                self.throttle_close(id);
                actions.push(RemediationAction::Quarantine {
                    enclave: id,
                    why: format!("{}: {}", v.kind.name(), v.detail),
                });
                // Drive the fault path. Idempotent: if Covirt's
                // containment already killed the enclave this only
                // records the decision.
                if self
                    .host
                    .report_fault(&enclave, &format!("remediation: {}", v.kind.name()))
                    .is_ok()
                {
                    actions.push(RemediationAction::Teardown { enclave: id });
                }
            }
        }

        // Throttle on SLO degradation; lift on recovery.
        let degraded: HashSet<u64> = verdict.degraded.iter().map(|(id, _)| *id).collect();
        for (id, budgets) in &verdict.degraded {
            if !self.throttled.contains(id) {
                if let Ok(e) = self.host.enclave(EnclaveId(*id)) {
                    self.throttled.insert(*id);
                    e.set_throttled(true);
                    self.throttle_mark(*id);
                    actions.push(RemediationAction::Throttle {
                        enclave: *id,
                        why: budgets.join(", "),
                    });
                }
            }
        }
        let recovered: Vec<u64> = self
            .throttled
            .iter()
            .copied()
            .filter(|id| !degraded.contains(id))
            .collect();
        for id in recovered {
            self.throttled.remove(&id);
            if let Ok(e) = self.host.enclave(EnclaveId(id)) {
                e.set_throttled(false);
            }
            self.throttle_close(id);
            actions.push(RemediationAction::Unthrottle { enclave: id });
        }

        // Shed admission when observability degrades.
        if self.dropped_total > self.cfg.shed_drop_threshold && !self.host.admission_shed() {
            self.host.set_admission_shed(true);
            actions.push(RemediationAction::ShedAdmission {
                dropped: self.dropped_total,
            });
        }

        self.log.extend(actions.iter().cloned());
        actions
    }

    /// Every action taken so far, in order.
    pub fn log(&self) -> &[RemediationAction] {
        &self.log
    }

    /// Cumulative ring drops observed across all verdicts.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceRequest;
    use covirt_simhw::node::{NodeConfig, SimNode};
    use covirt_simhw::topology::{CoreId, ZoneId};
    use covirt_trace::audit::Violation;

    fn host_with_enclave() -> (Arc<PiscesHost>, u64) {
        let h = PiscesHost::new(SimNode::new(NodeConfig::small()));
        let e = h
            .create_enclave(
                "victim",
                &ResourceRequest::new(vec![CoreId(1)], vec![(ZoneId(0), 32 * 1024 * 1024)]),
            )
            .unwrap();
        h.launch(&e).unwrap();
        (h, e.id.0)
    }

    fn fault_verdict(enclave: u64, absence_based: bool, incomplete: bool) -> TailVerdict {
        TailVerdict {
            new_violations: vec![Violation {
                kind: if absence_based {
                    ViolationKind::OrphanTeardown
                } else {
                    ViolationKind::ProtectionFault
                },
                enclave: Some(enclave),
                tsc: 100,
                detail: "test violation".into(),
                window: Vec::new(),
                absence_based,
            }],
            evidence_incomplete: incomplete,
            ..TailVerdict::default()
        }
    }

    #[test]
    fn confirmed_violation_quarantines_then_tears_down_once() {
        let (h, id) = host_with_enclave();
        let mut p = RemediationPolicy::new(Arc::clone(&h), RemediationConfig::default());
        let actions = p.apply(&fault_verdict(id, false, false));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[0],
            RemediationAction::Quarantine { enclave, .. } if *enclave == id
        ));
        assert!(matches!(
            &actions[1],
            RemediationAction::Teardown { enclave } if *enclave == id
        ));
        let e = h.enclave(EnclaveId(id)).unwrap();
        assert!(e.is_quarantined());
        assert!(matches!(e.state(), crate::EnclaveState::Failed(_)));
        // A re-reported violation must not act twice.
        assert!(p.apply(&fault_verdict(id, false, false)).is_empty());
        assert_eq!(p.log().len(), 2);
    }

    #[test]
    fn unconfirmed_absence_finding_is_not_acted_on() {
        let (h, id) = host_with_enclave();
        let mut p = RemediationPolicy::new(Arc::clone(&h), RemediationConfig::default());
        // Orphan teardown with dropped events: exonerating record may be
        // among the missing ones.
        assert!(p.apply(&fault_verdict(id, true, true)).is_empty());
        assert!(!h.enclave(EnclaveId(id)).unwrap().is_quarantined());
        // Same finding with complete evidence is confirmed.
        assert_eq!(p.apply(&fault_verdict(id, true, false)).len(), 2);
    }

    #[test]
    fn throttle_follows_degradation_and_recovery() {
        let (h, id) = host_with_enclave();
        let mut p = RemediationPolicy::new(Arc::clone(&h), RemediationConfig::default());
        let degraded = TailVerdict {
            degraded: vec![(id, vec!["shootdown p99 5000 > 1000 ns".into()])],
            ..TailVerdict::default()
        };
        let actions = p.apply(&degraded);
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], RemediationAction::Throttle { .. }));
        assert!(h.enclave(EnclaveId(id)).unwrap().is_throttled());
        // Still degraded: no duplicate action.
        assert!(p.apply(&degraded).is_empty());
        // Recovered: throttle lifts.
        let actions = p.apply(&TailVerdict::default());
        assert_eq!(actions, vec![RemediationAction::Unthrottle { enclave: id }]);
        assert!(!h.enclave(EnclaveId(id)).unwrap().is_throttled());
    }

    #[test]
    fn drop_rate_sheds_admission() {
        let (h, _id) = host_with_enclave();
        let mut p = RemediationPolicy::new(
            Arc::clone(&h),
            RemediationConfig {
                shed_drop_threshold: 10,
            },
        );
        assert!(p
            .apply(&TailVerdict {
                dropped_since: 8,
                ..TailVerdict::default()
            })
            .is_empty());
        let actions = p.apply(&TailVerdict {
            dropped_since: 8,
            ..TailVerdict::default()
        });
        assert_eq!(
            actions,
            vec![RemediationAction::ShedAdmission { dropped: 16 }]
        );
        // Admission is actually refused now.
        let err = h
            .create_enclave(
                "late",
                &ResourceRequest::new(vec![CoreId(2)], vec![(ZoneId(0), 16 * 1024 * 1024)]),
            )
            .unwrap_err();
        assert!(matches!(err, crate::PiscesError::ResourceBusy(_)));
        // Sticky: no duplicate shed action.
        assert!(p
            .apply(&TailVerdict {
                dropped_since: 1,
                ..TailVerdict::default()
            })
            .is_empty());
        // Operator re-opens admission.
        h.set_admission_shed(false);
        h.create_enclave(
            "late",
            &ResourceRequest::new(vec![CoreId(2)], vec![(ZoneId(0), 16 * 1024 * 1024)]),
        )
        .unwrap();
    }

    #[test]
    fn quarantined_enclave_is_refused_grants() {
        let (h, id) = host_with_enclave();
        let e = h.enclave(EnclaveId(id)).unwrap();
        h.add_memory(&e, ZoneId(0), 2 * 1024 * 1024).unwrap();
        e.quarantine();
        assert!(matches!(
            h.add_memory(&e, ZoneId(0), 2 * 1024 * 1024),
            Err(crate::PiscesError::Vetoed(_))
        ));
    }
}
