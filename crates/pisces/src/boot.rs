//! The enclave boot protocol: trampoline hand-off and boot parameters.
//!
//! Pisces boots a co-kernel by (1) writing a boot-parameter structure into
//! the enclave's memory, (2) pointing the target CPU's trampoline at the
//! kernel entry, and (3) kicking the CPU. The address of the parameter
//! structure is handed to the kernel in a register (RDI here).
//!
//! Covirt interposes on exactly this path: its hook replaces the
//! [`BootPlan`]'s target with the hypervisor entry and substitutes its own
//! parameter structure that *contains a pointer to the unmodified Pisces
//! boot parameters*, so the co-kernel remains oblivious. The
//! [`BootTarget`] enum is how that substitution is expressed in the model.

use crate::wire::{WireError, WireReader, WireWriter};
use covirt_simhw::addr::{HostPhysAddr, PhysRange};
use covirt_simhw::memory::PhysMemory;
use covirt_simhw::topology::CoreId;

/// Magic number identifying a Pisces boot-parameter structure.
pub const BOOT_MAGIC: u64 = 0x5049_5343_4553_4250; // "PISCESBP"

/// The boot-parameter structure transmitted to a co-kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootParams {
    /// Identifies the structure ([`BOOT_MAGIC`]).
    pub magic: u64,
    /// The enclave's id.
    pub enclave_id: u64,
    /// Name of the kernel image ("kitten" in the evaluation).
    pub kernel_name: String,
    /// Cores assigned to the enclave (boot core first).
    pub cores: Vec<u64>,
    /// Assigned memory regions as `(start, len)` pairs.
    pub mem_regions: Vec<(u64, u64)>,
    /// IPI vectors allocated to the enclave.
    pub ipi_vectors: Vec<u8>,
    /// Physical base of the control channel shared region.
    pub ctrlchan_base: u64,
    /// Length of the control channel region.
    pub ctrlchan_len: u64,
    /// Region the kernel may carve page-table frames from
    /// (start, len) — inside the enclave's first memory region.
    pub pt_pool: (u64, u64),
    /// Node TSC frequency for the kernel's timekeeping.
    pub tsc_hz: u64,
}

impl BootParams {
    /// Serialize into wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.magic)
            .put_u64(self.enclave_id)
            .put_str(&self.kernel_name)
            .put_u64_list(&self.cores);
        w.put_u64(self.mem_regions.len() as u64);
        for &(s, l) in &self.mem_regions {
            w.put_u64(s).put_u64(l);
        }
        w.put_u64_list(
            &self
                .ipi_vectors
                .iter()
                .map(|&v| v as u64)
                .collect::<Vec<_>>(),
        )
        .put_u64(self.ctrlchan_base)
        .put_u64(self.ctrlchan_len)
        .put_u64(self.pt_pool.0)
        .put_u64(self.pt_pool.1)
        .put_u64(self.tsc_hz);
        w.finish()
    }

    /// Deserialize from wire format.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let magic = r.get_u64()?;
        if magic != BOOT_MAGIC {
            return Err(WireError);
        }
        let enclave_id = r.get_u64()?;
        let kernel_name = r.get_str()?;
        let cores = r.get_u64_list()?;
        let nregions = r.get_u64()? as usize;
        if nregions > 4096 {
            return Err(WireError);
        }
        let mut mem_regions = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            mem_regions.push((r.get_u64()?, r.get_u64()?));
        }
        let ipi_vectors = r
            .get_u64_list()?
            .into_iter()
            .map(|v| u8::try_from(v).map_err(|_| WireError))
            .collect::<Result<Vec<u8>, _>>()?;
        Ok(BootParams {
            magic,
            enclave_id,
            kernel_name,
            cores,
            mem_regions,
            ipi_vectors,
            ctrlchan_base: r.get_u64()?,
            ctrlchan_len: r.get_u64()?,
            pt_pool: (r.get_u64()?, r.get_u64()?),
            tsc_hz: r.get_u64()?,
        })
    }

    /// Write the structure into physical memory at `addr` (length-prefixed
    /// so it can be read back without out-of-band size knowledge).
    pub fn write_to(
        &self,
        mem: &PhysMemory,
        addr: HostPhysAddr,
    ) -> Result<(), covirt_simhw::HwError> {
        let bytes = self.encode();
        mem.write_u64(addr, bytes.len() as u64)?;
        mem.write_bytes(addr.add(8), &bytes)
    }

    /// Read a structure back from physical memory.
    pub fn read_from(mem: &PhysMemory, addr: HostPhysAddr) -> Result<Self, WireError> {
        let len = mem.read_u64(addr).map_err(|_| WireError)?;
        if len == 0 || len > 1 << 20 {
            return Err(WireError);
        }
        let mut buf = vec![0u8; len as usize];
        mem.read_bytes(addr.add(8), &mut buf)
            .map_err(|_| WireError)?;
        Self::decode(&buf)
    }

    /// Bytes needed to store the structure (including length prefix).
    pub fn stored_size(&self) -> u64 {
        8 + self.encode().len() as u64
    }
}

/// What a freshly kicked CPU starts executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BootTarget {
    /// Boot straight into the co-kernel (native Pisces behaviour). The
    /// kernel reads its [`BootParams`] from `params_addr` (passed in RDI).
    Kernel {
        /// Physical address of the boot parameters.
        params_addr: HostPhysAddr,
    },
    /// Boot into an interposed layer (Covirt's hypervisor). The layer's own
    /// parameter structure lives at `layer_params_addr`; it contains a
    /// pointer to the original kernel parameters.
    Interposed {
        /// Identifies the interposing layer ("covirt").
        layer: String,
        /// Physical address of the layer's parameter structure.
        layer_params_addr: HostPhysAddr,
    },
}

/// The per-enclave boot plan produced by the host and (possibly) rewritten
/// by hooks before the CPUs are kicked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootPlan {
    /// The enclave being booted.
    pub enclave_id: u64,
    /// Boot core (BSP of the enclave).
    pub boot_core: CoreId,
    /// Application cores, brought up by the kernel after the BSP.
    pub secondary_cores: Vec<CoreId>,
    /// What each core starts executing.
    pub target: BootTarget,
    /// Where the *original* Pisces boot parameters live (never changes,
    /// even when the target is interposed).
    pub pisces_params_addr: HostPhysAddr,
    /// Region reserved for the boot structures (parameters + any layer
    /// additions), carved from the enclave's assignment.
    pub boot_region: PhysRange,
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::PAGE_SIZE_4K;
    use covirt_simhw::topology::ZoneId;

    fn params() -> BootParams {
        BootParams {
            magic: BOOT_MAGIC,
            enclave_id: 3,
            kernel_name: "kitten".into(),
            cores: vec![4, 5],
            mem_regions: vec![(0x100_0000, 0x20_0000), (0x200_0000, 0x10_0000)],
            ipi_vectors: vec![0x40, 0x41],
            ctrlchan_base: 0x300_0000,
            ctrlchan_len: 0x1_0000,
            pt_pool: (0x100_0000, 0x10_0000),
            tsc_hz: 1_700_000_000,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = params();
        assert_eq!(BootParams::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut p = params();
        p.magic = 0x1234;
        assert!(BootParams::decode(&p.encode()).is_err());
    }

    #[test]
    fn memory_roundtrip() {
        let mem = PhysMemory::new(&[16 * 1024 * 1024]);
        let region = mem.alloc_backed(ZoneId(0), 8192, PAGE_SIZE_4K).unwrap();
        let p = params();
        p.write_to(&mem, region.start).unwrap();
        let back = BootParams::read_from(&mem, region.start).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn read_from_unwritten_memory_fails() {
        let mem = PhysMemory::new(&[16 * 1024 * 1024]);
        let region = mem.alloc_backed(ZoneId(0), 4096, PAGE_SIZE_4K).unwrap();
        assert!(BootParams::read_from(&mem, region.start).is_err());
    }

    #[test]
    fn stored_size_covers_encoding() {
        let p = params();
        assert_eq!(p.stored_size(), 8 + p.encode().len() as u64);
    }
}
