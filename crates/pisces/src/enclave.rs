//! Enclave objects and their lifecycle state machine.

use crate::ctrlchan::CtrlChannel;
use crate::resources::ResourceSpec;
use covirt_simhw::addr::PhysRange;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};

/// Enclave identifier, unique per host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EnclaveId(pub u64);

impl std::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave{}", self.0)
    }
}

/// Lifecycle states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnclaveState {
    /// Resources assigned, kernel not yet loaded.
    Created,
    /// Boot structures written; ready to launch.
    Loaded,
    /// Co-kernel running.
    Running,
    /// Orderly shutdown in progress.
    ShuttingDown,
    /// Cleanly shut down; resources reclaimed.
    Terminated,
    /// Killed by a fault (Covirt containment or host decision); the string
    /// records why.
    Failed(String),
}

impl EnclaveState {
    /// True if the enclave's cores may be executing.
    pub fn is_live(&self) -> bool {
        matches!(self, EnclaveState::Running | EnclaveState::ShuttingDown)
    }
}

/// One enclave: a hardware partition plus the management state attached to
/// it.
pub struct Enclave {
    /// The enclave's id.
    pub id: EnclaveId,
    /// Human-readable name.
    pub name: String,
    state: Mutex<EnclaveState>,
    resources: RwLock<ResourceSpec>,
    /// Region holding boot structures and the control channel (owned by
    /// the framework, not part of the co-kernel's general-purpose memory).
    pub mgmt_region: PhysRange,
    ctrl: Mutex<Option<CtrlChannel>>,
    /// Self-healing control flags, orthogonal to the lifecycle state: a
    /// remediation policy throttles an enclave whose SLOs degrade and
    /// quarantines one with a confirmed protection violation. Flags, not
    /// states — the lifecycle machine keeps its invariants.
    throttled: AtomicBool,
    quarantined: AtomicBool,
}

impl Enclave {
    /// Build a new enclave record in `Created` state.
    pub fn new(
        id: EnclaveId,
        name: String,
        resources: ResourceSpec,
        mgmt_region: PhysRange,
    ) -> Self {
        Enclave {
            id,
            name,
            state: Mutex::new(EnclaveState::Created),
            resources: RwLock::new(resources),
            mgmt_region,
            ctrl: Mutex::new(None),
            throttled: AtomicBool::new(false),
            quarantined: AtomicBool::new(false),
        }
    }

    /// Whether a remediation policy is throttling this enclave.
    pub fn is_throttled(&self) -> bool {
        self.throttled.load(Ordering::Acquire)
    }

    /// Set or clear the throttle flag (the enclave's drivers pace resource
    /// requests off it). Returns the previous value.
    pub fn set_throttled(&self, on: bool) -> bool {
        self.throttled.swap(on, Ordering::AcqRel)
    }

    /// Whether this enclave has been quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Quarantine the enclave: no new resources may be granted to it
    /// (`PiscesHost::add_memory` refuses). One-way; returns `true` only
    /// for the transition, so a policy acts exactly once.
    pub fn quarantine(&self) -> bool {
        !self.quarantined.swap(true, Ordering::AcqRel)
    }

    /// Current state (cloned snapshot).
    pub fn state(&self) -> EnclaveState {
        self.state.lock().clone()
    }

    /// Transition with validation; returns the previous state.
    pub fn set_state(&self, next: EnclaveState) -> EnclaveState {
        let mut s = self.state.lock();
        std::mem::replace(&mut *s, next)
    }

    /// Read access to the resource partition.
    pub fn resources(&self) -> ResourceSpec {
        self.resources.read().clone()
    }

    /// Mutate the resource partition.
    pub fn with_resources_mut<R>(&self, f: impl FnOnce(&mut ResourceSpec) -> R) -> R {
        f(&mut self.resources.write())
    }

    /// Install the host-side control channel handle.
    pub fn set_ctrl(&self, ch: CtrlChannel) {
        *self.ctrl.lock() = Some(ch);
    }

    /// The host-side control channel, if the enclave has been loaded.
    pub fn ctrl(&self) -> Option<CtrlChannel> {
        self.ctrl.lock().clone()
    }
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Enclave({} \"{}\" {:?})",
            self.id,
            self.name,
            self.state()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::HostPhysAddr;

    fn enclave() -> Enclave {
        Enclave::new(
            EnclaveId(1),
            "test".into(),
            ResourceSpec::new(),
            PhysRange::new(HostPhysAddr::new(0x1000), 0x1000),
        )
    }

    #[test]
    fn initial_state_created() {
        let e = enclave();
        assert_eq!(e.state(), EnclaveState::Created);
        assert!(!e.state().is_live());
    }

    #[test]
    fn transitions_and_liveness() {
        let e = enclave();
        e.set_state(EnclaveState::Loaded);
        e.set_state(EnclaveState::Running);
        assert!(e.state().is_live());
        let prev = e.set_state(EnclaveState::Failed("ept violation".into()));
        assert_eq!(prev, EnclaveState::Running);
        assert!(!e.state().is_live());
    }

    #[test]
    fn remediation_flags() {
        let e = enclave();
        assert!(!e.is_throttled());
        assert!(!e.is_quarantined());
        assert!(!e.set_throttled(true));
        assert!(e.is_throttled());
        assert!(e.set_throttled(false));
        // Quarantine reports the transition exactly once.
        assert!(e.quarantine());
        assert!(!e.quarantine());
        assert!(e.is_quarantined());
        // Flags do not disturb the lifecycle state machine.
        assert_eq!(e.state(), EnclaveState::Created);
    }

    #[test]
    fn resource_mutation() {
        let e = enclave();
        e.with_resources_mut(|r| {
            r.ipi_vectors.push(0x40);
        });
        assert!(e.resources().has_vector(0x40));
    }
}
