//! Fixed-layout binary codec for structures that live in simulated guest
//! memory (boot parameters, ring slots, page-frame lists).
//!
//! Pisces passes its boot parameters and control messages as C structs in
//! physical memory. We reproduce that with a tiny explicit word codec
//! rather than an in-process object graph, so the simulated software really
//! does read its configuration out of enclave RAM.

/// Append-only little-endian word writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u32 (stored in a full word for alignment).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Append a byte (stored in a full word for alignment).
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Append a length-prefixed list of u64s.
    pub fn put_u64_list(&mut self, vs: &[u64]) -> &mut Self {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
        self
    }

    /// Append a length-prefixed UTF-8 string, padded to a word boundary.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
        self
    }

    /// Finish, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential reader over wire-encoded bytes.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decoding failure (truncated or malformed buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire data")
    }
}

impl std::error::Error for WireError {}

impl<'a> WireReader<'a> {
    /// Read from `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Read a u32 stored as a word.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| WireError)
    }

    /// Read a u8 stored as a word.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let v = self.get_u64()?;
        u8::try_from(v).map_err(|_| WireError)
    }

    /// Read a length-prefixed list of u64s.
    pub fn get_u64_list(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u64()? as usize;
        // Sanity bound: no legitimate structure has a billion entries.
        if n > self.buf.len() / 8 {
            return Err(WireError);
        }
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed string (with its pad).
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let n = self.get_u64()? as usize;
        let end = self.pos.checked_add(n).ok_or(WireError)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| WireError)?
            .to_owned();
        self.pos = end.div_ceil(8) * 8;
        if self.pos > self.buf.len() {
            return Err(WireError);
        }
        Ok(s)
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.put_u64(42).put_u32(7).put_u8(255);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u8().unwrap(), 255);
    }

    #[test]
    fn roundtrip_list_and_str() {
        let mut w = WireWriter::new();
        w.put_u64_list(&[1, 2, 3]).put_str("kitten.bin").put_u64(9);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u64_list().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "kitten.bin");
        assert_eq!(r.get_u64().unwrap(), 9);
    }

    #[test]
    fn truncated_fails() {
        let mut w = WireWriter::new();
        w.put_u64(1);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..4]);
        assert_eq!(r.get_u64(), Err(WireError));
    }

    #[test]
    fn absurd_list_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u64_list(), Err(WireError));
    }

    #[test]
    fn str_padding_keeps_alignment() {
        let mut w = WireWriter::new();
        w.put_str("abc");
        assert_eq!(w.len() % 8, 0);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "abc");
        assert_eq!(r.consumed(), bytes.len());
    }

    #[test]
    fn narrowing_overflow_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(300);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8(), Err(WireError));
    }
}
