//! Single-producer / single-consumer message ring in shared physical
//! memory.
//!
//! Pisces' control channels (and later Covirt's hypervisor command queue)
//! are fixed-size message rings living in memory visible to both sides.
//! The ring is laid out *inside a populated physical region*, so the
//! simulated kernels genuinely communicate through (simulated) RAM:
//!
//! ```text
//! +0   magic
//! +8   slot_count          (power of two)
//! +16  slot_size           (bytes, multiple of 8)
//! +24  head                (consumer cursor, release-published)
//! +32  tail                (producer cursor, release-published)
//! +64  slot[0] .. slot[n-1]
//! ```

use covirt_simhw::addr::{HostPhysAddr, PhysRange};
use covirt_simhw::backing::Backing;
use covirt_simhw::memory::PhysMemory;
use std::sync::Arc;

const MAGIC: u64 = 0x5049_5343_4553_5251; // "PISCESRQ"
const OFF_MAGIC: usize = 0;
const OFF_COUNT: usize = 8;
const OFF_SLOT_SIZE: usize = 16;
const OFF_HEAD: usize = 24;
const OFF_TAIL: usize = 32;
const DATA_OFF: usize = 64;

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The ring is full (producer side).
    Full,
    /// The ring is empty (consumer side).
    Empty,
    /// The header is corrupt or the region is too small.
    Corrupt,
    /// A payload did not match the slot size.
    BadSize,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RingError::Full => "ring full",
            RingError::Empty => "ring empty",
            RingError::Corrupt => "ring corrupt",
            RingError::BadSize => "bad payload size",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RingError {}

/// A handle onto a shared-memory ring. Both ends construct a handle over
/// the same physical range; the type does not enforce which side produces —
/// the *protocol* (one producer, one consumer) does, as in the real system.
#[derive(Clone)]
pub struct SharedRing {
    backing: Arc<Backing>,
    base: usize,
    slot_count: u64,
    slot_size: u64,
}

impl SharedRing {
    /// Bytes of shared memory needed for `slot_count` slots of `slot_size`.
    pub fn required_bytes(slot_count: u64, slot_size: u64) -> u64 {
        DATA_OFF as u64 + slot_count * slot_size
    }

    /// Format a fresh ring into `range` (which must be populated) and
    /// return a handle. `slot_count` is rounded up to a power of two;
    /// `slot_size` to a multiple of 8.
    pub fn create(
        mem: &PhysMemory,
        range: PhysRange,
        slot_count: u64,
        slot_size: u64,
    ) -> Result<Self, RingError> {
        let slot_count = slot_count.max(2).next_power_of_two();
        let slot_size = slot_size.div_ceil(8) * 8;
        if Self::required_bytes(slot_count, slot_size) > range.len {
            return Err(RingError::Corrupt);
        }
        let (backing, base) = mem
            .resolve(range.start, range.len)
            .map_err(|_| RingError::Corrupt)?;
        backing.write_u64(base + OFF_COUNT, slot_count);
        backing.write_u64(base + OFF_SLOT_SIZE, slot_size);
        backing.write_u64(base + OFF_HEAD, 0);
        backing.write_u64(base + OFF_TAIL, 0);
        backing.write_u64_release(base + OFF_MAGIC, MAGIC);
        Ok(SharedRing {
            backing,
            base,
            slot_count,
            slot_size,
        })
    }

    /// Attach to a ring previously formatted at `range.start`.
    pub fn attach(mem: &PhysMemory, addr: HostPhysAddr) -> Result<Self, RingError> {
        let (backing, base) = mem
            .resolve(addr, DATA_OFF as u64)
            .map_err(|_| RingError::Corrupt)?;
        if backing.read_u64_acquire(base + OFF_MAGIC) != MAGIC {
            return Err(RingError::Corrupt);
        }
        let slot_count = backing.read_u64(base + OFF_COUNT);
        let slot_size = backing.read_u64(base + OFF_SLOT_SIZE);
        if !slot_count.is_power_of_two() || slot_size == 0 || slot_size % 8 != 0 {
            return Err(RingError::Corrupt);
        }
        // Re-resolve with the full extent to bounds-check the data area.
        let (backing, base) = mem
            .resolve(addr, Self::required_bytes(slot_count, slot_size))
            .map_err(|_| RingError::Corrupt)?;
        Ok(SharedRing {
            backing,
            base,
            slot_count,
            slot_size,
        })
    }

    /// Slot payload size in bytes.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Capacity in messages.
    pub fn capacity(&self) -> u64 {
        self.slot_count
    }

    fn head(&self) -> u64 {
        self.backing.read_u64_acquire(self.base + OFF_HEAD)
    }

    fn tail(&self) -> u64 {
        self.backing.read_u64_acquire(self.base + OFF_TAIL)
    }

    /// Messages currently queued.
    pub fn len(&self) -> u64 {
        self.tail().wrapping_sub(self.head())
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_offset(&self, idx: u64) -> usize {
        self.base + DATA_OFF + ((idx & (self.slot_count - 1)) * self.slot_size) as usize
    }

    /// Producer: enqueue one message (must be exactly `slot_size` bytes or
    /// shorter — short payloads are zero-padded).
    pub fn push(&self, payload: &[u8]) -> Result<(), RingError> {
        if payload.len() as u64 > self.slot_size {
            return Err(RingError::BadSize);
        }
        let head = self.head();
        let tail = self.tail();
        if tail.wrapping_sub(head) >= self.slot_count {
            return Err(RingError::Full);
        }
        let off = self.slot_offset(tail);
        self.backing.zero(off, self.slot_size as usize);
        self.backing.write_bytes(off, payload);
        self.backing
            .write_u64_release(self.base + OFF_TAIL, tail.wrapping_add(1));
        Ok(())
    }

    /// Consumer: dequeue one message.
    pub fn pop(&self) -> Result<Vec<u8>, RingError> {
        let head = self.head();
        let tail = self.tail();
        if tail == head {
            return Err(RingError::Empty);
        }
        let off = self.slot_offset(head);
        let mut buf = vec![0u8; self.slot_size as usize];
        self.backing.read_bytes(off, &mut buf);
        self.backing
            .write_u64_release(self.base + OFF_HEAD, head.wrapping_add(1));
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::PAGE_SIZE_4K;
    use covirt_simhw::topology::ZoneId;

    fn setup(slots: u64, size: u64) -> (Arc<PhysMemory>, PhysRange, SharedRing) {
        let mem = Arc::new(PhysMemory::new(&[16 * 1024 * 1024]));
        let range = mem
            .alloc_backed(ZoneId(0), 64 * 1024, PAGE_SIZE_4K)
            .unwrap();
        let ring = SharedRing::create(&mem, range, slots, size).unwrap();
        (mem, range, ring)
    }

    #[test]
    fn push_pop_fifo() {
        let (_m, _r, ring) = setup(8, 16);
        ring.push(b"alpha").unwrap();
        ring.push(b"beta").unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(&ring.pop().unwrap()[..5], b"alpha");
        assert_eq!(&ring.pop().unwrap()[..4], b"beta");
        assert_eq!(ring.pop(), Err(RingError::Empty));
    }

    #[test]
    fn fills_at_capacity() {
        let (_m, _r, ring) = setup(4, 8);
        for i in 0..4u64 {
            ring.push(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(ring.push(&[0; 8]), Err(RingError::Full));
        ring.pop().unwrap();
        ring.push(&[0; 8]).unwrap();
    }

    #[test]
    fn oversized_payload_rejected() {
        let (_m, _r, ring) = setup(4, 8);
        assert_eq!(ring.push(&[0u8; 9]), Err(RingError::BadSize));
    }

    #[test]
    fn attach_sees_messages() {
        let (mem, range, ring) = setup(8, 16);
        ring.push(b"hello enclave").unwrap();
        let other = SharedRing::attach(&mem, range.start).unwrap();
        assert_eq!(other.capacity(), 8);
        let msg = other.pop().unwrap();
        assert_eq!(&msg[..13], b"hello enclave");
        // Consumption is visible to the original handle.
        assert!(ring.is_empty());
    }

    #[test]
    fn attach_rejects_unformatted() {
        let mem = Arc::new(PhysMemory::new(&[4 * 1024 * 1024]));
        let range = mem.alloc_backed(ZoneId(0), 4096, PAGE_SIZE_4K).unwrap();
        assert_eq!(
            SharedRing::attach(&mem, range.start).err(),
            Some(RingError::Corrupt)
        );
    }

    #[test]
    fn create_rejects_undersized_region() {
        let mem = Arc::new(PhysMemory::new(&[4 * 1024 * 1024]));
        let range = mem.alloc_backed(ZoneId(0), 4096, PAGE_SIZE_4K).unwrap();
        assert!(SharedRing::create(&mem, range, 1024, 128).is_err());
    }

    #[test]
    fn cross_thread_stream() {
        let (_m, _r, ring) = setup(16, 8);
        let producer = ring.clone();
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                loop {
                    match producer.push(&i.to_le_bytes()) {
                        Ok(()) => break,
                        Err(RingError::Full) => std::thread::yield_now(),
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < 1000 {
            match ring.pop() {
                Ok(buf) => {
                    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
                    assert_eq!(v, expect);
                    expect += 1;
                }
                Err(RingError::Empty) => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        }
        t.join().unwrap();
    }
}
