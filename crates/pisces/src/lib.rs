//! # pisces — a co-kernel framework model
//!
//! This crate reproduces the *Pisces* lightweight co-kernel framework the
//! paper builds on: it partitions a node's hardware resources into
//! *enclaves*, boots an independent OS/R in each, and provides the
//! communication and management plumbing between the host kernel and the
//! co-kernels. It is implemented against the simulated hardware in
//! [`covirt_simhw`] and exposes exactly the seams Covirt hooks:
//!
//! * **Resource partitioning** ([`resources`]) — cores, memory regions and
//!   IPI vectors assigned to each enclave, with dynamic add/remove.
//! * **Boot protocol** ([`boot`], [`wire`]) — the trampoline hand-off: a
//!   boot-parameter structure serialized into enclave memory whose address
//!   is passed to the co-kernel in a register. Covirt *interposes* on this
//!   (it boots the CPU into its hypervisor, which chains to the original
//!   kernel entry), which is why the plan is a first-class value
//!   ([`boot::BootPlan`]) that hooks may rewrite.
//! * **Control channels** ([`ring`], [`ctrlchan`]) — shared-memory command
//!   rings between the host and each enclave (Pisces' longcall channel),
//!   used for memory grant/reclaim transmission and syscall forwarding.
//! * **Management ABI** ([`ioctl`]) — the `/dev/pisces`-style command
//!   interface, with an extension registry so Covirt can piggy-back new
//!   commands, exactly as the paper describes.
//! * **Lifecycle + hooks** ([`enclave`], [`hooks`], [`host`]) — enclave
//!   state machine and the resource-event callbacks whose *ordering*
//!   (map-before-notify, unmap-after-ack) the Covirt controller depends on.

pub mod boot;
pub mod ctrlchan;
pub mod enclave;
pub mod hooks;
pub mod host;
pub mod ioctl;
pub mod remediation;
pub mod resources;
pub mod ring;
pub mod wire;

pub use enclave::{Enclave, EnclaveId, EnclaveState};
pub use host::PiscesHost;
pub use remediation::{RemediationAction, RemediationConfig, RemediationPolicy};
pub use resources::ResourceSpec;

/// Errors produced by the framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiscesError {
    /// Underlying hardware error.
    Hw(covirt_simhw::HwError),
    /// The named enclave does not exist.
    NoSuchEnclave(u64),
    /// Operation invalid in the enclave's current state.
    BadState {
        /// The enclave.
        enclave: u64,
        /// What was attempted.
        op: &'static str,
    },
    /// A requested resource is unavailable or already assigned.
    ResourceBusy(&'static str),
    /// A hook vetoed the operation.
    Vetoed(&'static str),
    /// Malformed request.
    Invalid(&'static str),
}

impl std::fmt::Display for PiscesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PiscesError::Hw(e) => write!(f, "hardware error: {e}"),
            PiscesError::NoSuchEnclave(id) => write!(f, "no such enclave: {id}"),
            PiscesError::BadState { enclave, op } => {
                write!(f, "enclave {enclave}: invalid state for {op}")
            }
            PiscesError::ResourceBusy(what) => write!(f, "resource busy: {what}"),
            PiscesError::Vetoed(why) => write!(f, "operation vetoed by hook: {why}"),
            PiscesError::Invalid(what) => write!(f, "invalid request: {what}"),
        }
    }
}

impl std::error::Error for PiscesError {}

impl From<covirt_simhw::HwError> for PiscesError {
    fn from(e: covirt_simhw::HwError) -> Self {
        PiscesError::Hw(e)
    }
}

/// Result alias for the crate.
pub type PiscesResult<T> = Result<T, PiscesError>;
