//! Resource-event hooks — the integration seam the Covirt controller uses.
//!
//! The paper: *"\[the control module\] places a series of callback routines
//! into various locations within the Hobbes infrastructure in order to
//! capture notifications when resource management operations are
//! performed."* These are those locations, with the ordering contract the
//! Covirt memory protocol depends on spelled out per method.

use crate::boot::BootPlan;
use crate::enclave::Enclave;
use crate::PiscesResult;
use covirt_simhw::addr::PhysRange;

/// Callbacks invoked by [`crate::host::PiscesHost`] around resource
/// management operations. All methods default to no-ops; a hook may veto by
/// returning an error, which aborts the surrounding operation.
#[allow(unused_variables)]
pub trait EnclaveHooks: Send + Sync {
    /// Called after the host constructs the boot plan and before the CPUs
    /// are kicked. The returned plan replaces the original — this is how
    /// Covirt interposes its hypervisor into the boot path.
    fn on_boot_plan(&self, enclave: &Enclave, plan: BootPlan) -> PiscesResult<BootPlan> {
        Ok(plan)
    }

    /// Called when a memory grant has been *decided* but **before** the
    /// page list is transmitted to the co-kernel. Covirt maps the region
    /// into the EPT here and returns immediately; by the time the co-kernel
    /// learns of the memory, a nested walk already succeeds. (Ordering rule:
    /// resources become guest-visible only after they are mapped.)
    fn on_mem_add_prepared(&self, enclave: &Enclave, range: PhysRange) -> PiscesResult<()> {
        Ok(())
    }

    /// Called when the co-kernel has **acknowledged** removal of a region
    /// but before the host reclaims/reuses it. Covirt unmaps the EPT
    /// entries here and issues a `TlbFlush` command to every enclave core,
    /// returning only once the flush completes. (Ordering rule: reclamation
    /// happens only after the mapping is gone everywhere.)
    fn on_mem_remove_acked(&self, enclave: &Enclave, range: PhysRange) -> PiscesResult<()> {
        Ok(())
    }

    /// Called when an IPI vector is allocated to the enclave — Covirt adds
    /// it to the enclave's transmission whitelist.
    fn on_vector_alloc(&self, enclave: &Enclave, vector: u8) -> PiscesResult<()> {
        Ok(())
    }

    /// Called when an IPI vector is returned — Covirt removes it from the
    /// whitelist (before the vector can be handed to someone else).
    fn on_vector_free(&self, enclave: &Enclave, vector: u8) -> PiscesResult<()> {
        Ok(())
    }

    /// Called when the enclave is torn down (cleanly or after a fault) so
    /// the layer can release its own per-enclave state.
    fn on_teardown(&self, enclave: &Enclave) {}
}

/// A no-op hook set, useful as a default and in tests.
pub struct NullHooks;

impl EnclaveHooks for NullHooks {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveId;
    use crate::resources::ResourceSpec;
    use covirt_simhw::addr::HostPhysAddr;

    #[test]
    fn null_hooks_pass_through() {
        let e = Enclave::new(
            EnclaveId(1),
            "t".into(),
            ResourceSpec::new(),
            PhysRange::new(HostPhysAddr::new(0), 0x1000),
        );
        let h = NullHooks;
        assert!(h
            .on_mem_add_prepared(&e, PhysRange::new(HostPhysAddr::new(0), 1))
            .is_ok());
        assert!(h
            .on_mem_remove_acked(&e, PhysRange::new(HostPhysAddr::new(0), 1))
            .is_ok());
        assert!(h.on_vector_alloc(&e, 0x40).is_ok());
        assert!(h.on_vector_free(&e, 0x40).is_ok());
        h.on_teardown(&e);
    }
}
