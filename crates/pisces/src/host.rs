//! The host-side Pisces framework: enclave creation, dynamic resource
//! assignment, and teardown/fault reclamation.
//!
//! `PiscesHost` models the Pisces Linux kernel module plus the host-side
//! management process. It owns the node's resource bookkeeping (the host
//! Linux "has" everything an enclave was not given), runs the hook chain
//! around every resource event, and drives the control channels.

use crate::boot::{BootParams, BootPlan, BootTarget, BOOT_MAGIC};
use crate::ctrlchan::{CtrlChannel, CtrlMsg};
use crate::enclave::{Enclave, EnclaveId, EnclaveState};
use crate::hooks::EnclaveHooks;
use crate::resources::{ResourceRequest, ResourceSpec};
use crate::{PiscesError, PiscesResult};
use covirt_simhw::addr::{PhysRange, PAGE_SIZE_2M, PAGE_SIZE_4K};
use covirt_simhw::node::SimNode;
use covirt_simhw::topology::{CoreId, ZoneId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// First dynamically allocatable IPI vector (below are legacy/exception
/// vectors and fixed OS vectors).
pub const VECTOR_POOL_FIRST: u8 = 0x40;
/// Last dynamically allocatable IPI vector.
pub const VECTOR_POOL_LAST: u8 = 0xbf;

/// Size reserved per enclave for boot structures + control channel.
const MGMT_REGION_LEN: u64 = 256 * 1024;
/// Of the enclave's first region, how much is designated as page-table pool.
const PT_POOL_LEN: u64 = 16 * 1024 * 1024;

/// The host-side framework instance.
pub struct PiscesHost {
    node: Arc<SimNode>,
    enclaves: RwLock<BTreeMap<u64, Arc<Enclave>>>,
    hooks: RwLock<Vec<Arc<dyn EnclaveHooks>>>,
    next_id: AtomicU64,
    assigned_cores: Mutex<HashSet<usize>>,
    vector_pool: Mutex<VecDeque<u8>>,
    /// When set (by a remediation policy whose observability degraded),
    /// new enclave admission is refused until the flag clears.
    admission_shed: AtomicBool,
}

impl PiscesHost {
    /// Load the framework onto a node. Core 0 is reserved for the host OS.
    pub fn new(node: Arc<SimNode>) -> Arc<Self> {
        Arc::new(PiscesHost {
            node,
            enclaves: RwLock::new(BTreeMap::new()),
            hooks: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(1),
            assigned_cores: Mutex::new(HashSet::from([0])),
            vector_pool: Mutex::new((VECTOR_POOL_FIRST..=VECTOR_POOL_LAST).collect()),
            admission_shed: AtomicBool::new(false),
        })
    }

    /// Whether new enclave admission is currently shed.
    pub fn admission_shed(&self) -> bool {
        self.admission_shed.load(Ordering::Acquire)
    }

    /// Shed (or re-open) admission of new enclaves. Returns the previous
    /// value. Set by remediation when ring-drop rates mark the audit
    /// evidence too incomplete to vouch for new tenants.
    pub fn set_admission_shed(&self, on: bool) -> bool {
        self.admission_shed.swap(on, Ordering::AcqRel)
    }

    /// The node this framework manages.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }

    /// Register a hook set (Covirt's controller registers here).
    pub fn register_hooks(&self, hooks: Arc<dyn EnclaveHooks>) {
        self.hooks.write().push(hooks);
    }

    fn run_hooks<T>(&self, f: impl Fn(&dyn EnclaveHooks) -> PiscesResult<T>) -> PiscesResult<()> {
        for h in self.hooks.read().iter() {
            f(h.as_ref())?;
        }
        Ok(())
    }

    /// Look up an enclave.
    pub fn enclave(&self, id: EnclaveId) -> PiscesResult<Arc<Enclave>> {
        self.enclaves
            .read()
            .get(&id.0)
            .cloned()
            .ok_or(PiscesError::NoSuchEnclave(id.0))
    }

    /// All enclaves, by id.
    pub fn enclaves(&self) -> Vec<Arc<Enclave>> {
        self.enclaves.read().values().cloned().collect()
    }

    /// Create an enclave: claim cores, allocate (and populate) memory,
    /// allocate IPI vectors, set up the control channel and boot
    /// parameters. The enclave is left in `Loaded` state.
    pub fn create_enclave(&self, name: &str, req: &ResourceRequest) -> PiscesResult<Arc<Enclave>> {
        if self.admission_shed() {
            return Err(PiscesError::ResourceBusy(
                "admission shed: observability degraded",
            ));
        }
        // Claim cores.
        {
            let mut assigned = self.assigned_cores.lock();
            for c in &req.cores {
                if c.0 >= self.node.topology.total_cores() {
                    return Err(PiscesError::Invalid("core does not exist"));
                }
                if assigned.contains(&c.0) {
                    return Err(PiscesError::ResourceBusy("core already assigned"));
                }
            }
            for c in &req.cores {
                assigned.insert(c.0);
            }
        }
        let release_cores = |host: &Self| {
            let mut assigned = host.assigned_cores.lock();
            for c in &req.cores {
                assigned.remove(&c.0);
            }
        };

        // Management region (boot params + control channel) is allocated
        // *before* the enclave's general-purpose memory so that the page
        // after the enclave's last region is never framework-owned — a
        // wild off-by-one access from the co-kernel lands in genuinely
        // foreign memory.
        let mgmt_zone = req
            .mem_per_zone
            .first()
            .map(|&(z, _)| z)
            .unwrap_or(ZoneId(0));
        let mgmt = match self
            .node
            .mem
            .alloc_backed(mgmt_zone, MGMT_REGION_LEN, PAGE_SIZE_4K)
        {
            Ok(r) => r,
            Err(e) => {
                release_cores(self);
                return Err(e.into());
            }
        };

        // Allocate memory, 2 MiB-aligned so identity maps coalesce.
        let mut spec = ResourceSpec {
            cores: req.cores.clone(),
            ..Default::default()
        };
        let mut allocated: Vec<PhysRange> = Vec::new();
        for &(zone, bytes) in &req.mem_per_zone {
            match self.node.mem.alloc_backed(zone, bytes, PAGE_SIZE_2M) {
                Ok(r) => {
                    allocated.push(r);
                    spec.add_mem(r).expect("fresh allocations cannot overlap");
                }
                Err(e) => {
                    for r in allocated {
                        let _ = self.node.mem.free(r);
                    }
                    let _ = self.node.mem.free(mgmt);
                    release_cores(self);
                    return Err(e.into());
                }
            }
        }
        if spec.mem.is_empty() {
            let _ = self.node.mem.free(mgmt);
            release_cores(self);
            return Err(PiscesError::Invalid(
                "enclave needs at least one memory region",
            ));
        }

        // Allocate IPI vectors.
        {
            let mut pool = self.vector_pool.lock();
            if pool.len() < req.num_ipi_vectors {
                for r in allocated {
                    let _ = self.node.mem.free(r);
                }
                let _ = self.node.mem.free(mgmt);
                release_cores(self);
                return Err(PiscesError::ResourceBusy("IPI vector pool exhausted"));
            }
            for _ in 0..req.num_ipi_vectors {
                spec.ipi_vectors
                    .push(pool.pop_front().expect("checked length"));
            }
        }

        let id = EnclaveId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let enclave = Arc::new(Enclave::new(id, name.to_owned(), spec.clone(), mgmt));

        // Control channel occupies the tail of the management region.
        let chan_len = CtrlChannel::required_bytes();
        let chan_base = mgmt.start.add(mgmt.len - chan_len);
        let mut chan = CtrlChannel::create(&self.node.mem, PhysRange::new(chan_base, chan_len))
            .map_err(|_| PiscesError::Invalid("control channel setup failed"))?;
        chan.set_tracer(self.node.controller_tracer());
        enclave.set_ctrl(chan);

        // Boot parameters at the head of the management region.
        let first = spec.mem[0];
        let params = BootParams {
            magic: BOOT_MAGIC,
            enclave_id: id.0,
            kernel_name: "kitten".into(),
            cores: spec.cores.iter().map(|c| c.0 as u64).collect(),
            mem_regions: spec.mem.iter().map(|r| (r.start.raw(), r.len)).collect(),
            ipi_vectors: spec.ipi_vectors.clone(),
            ctrlchan_base: chan_base.raw(),
            ctrlchan_len: chan_len,
            pt_pool: (first.start.raw(), PT_POOL_LEN.min(first.len / 4)),
            tsc_hz: self.node.topology.tsc_hz,
        };
        params.write_to(&self.node.mem, mgmt.start)?;

        enclave.set_state(EnclaveState::Loaded);
        self.enclaves.write().insert(id.0, Arc::clone(&enclave));
        Ok(enclave)
    }

    /// Produce the native boot plan for a loaded enclave.
    pub fn boot_plan(&self, enclave: &Enclave) -> PiscesResult<BootPlan> {
        let res = enclave.resources();
        let boot_core = *res
            .cores
            .first()
            .ok_or(PiscesError::Invalid("enclave has no cores"))?;
        Ok(BootPlan {
            enclave_id: enclave.id.0,
            boot_core,
            secondary_cores: res.cores[1..].to_vec(),
            target: BootTarget::Kernel {
                params_addr: enclave.mgmt_region.start,
            },
            pisces_params_addr: enclave.mgmt_region.start,
            boot_region: enclave.mgmt_region,
        })
    }

    /// Launch: run the boot plan through the hook chain (Covirt rewrites it
    /// here) and mark the enclave running. The caller then drives the
    /// returned plan on the enclave's cores.
    pub fn launch(&self, enclave: &Enclave) -> PiscesResult<BootPlan> {
        if enclave.state() != EnclaveState::Loaded {
            return Err(PiscesError::BadState {
                enclave: enclave.id.0,
                op: "launch",
            });
        }
        let mut plan = self.boot_plan(enclave)?;
        for h in self.hooks.read().iter() {
            plan = h.on_boot_plan(enclave, plan)?;
        }
        enclave.set_state(EnclaveState::Running);
        Ok(plan)
    }

    /// Grant additional memory to a running enclave.
    ///
    /// Ordering (the Covirt contract): allocate → **hook** (EPT map) →
    /// record in the partition → transmit the page list to the co-kernel.
    pub fn add_memory(
        &self,
        enclave: &Enclave,
        zone: ZoneId,
        bytes: u64,
    ) -> PiscesResult<PhysRange> {
        if !enclave.state().is_live() {
            return Err(PiscesError::BadState {
                enclave: enclave.id.0,
                op: "add_memory",
            });
        }
        if enclave.is_quarantined() {
            return Err(PiscesError::Vetoed("enclave is quarantined"));
        }
        let range = self.node.mem.alloc_backed(zone, bytes, PAGE_SIZE_2M)?;
        if let Err(e) = self.run_hooks(|h| h.on_mem_add_prepared(enclave, range)) {
            let _ = self.node.mem.free(range);
            return Err(e);
        }
        enclave
            .with_resources_mut(|r| r.add_mem(range))
            .map_err(PiscesError::Invalid)?;
        let ctrl = enclave
            .ctrl()
            .ok_or(PiscesError::Invalid("no control channel"))?;
        ctrl.send(&CtrlMsg::AddMem {
            start: range.start.raw(),
            len: range.len,
        })
        .map_err(|_| PiscesError::ResourceBusy("control channel full"))?;
        Ok(range)
    }

    /// Ask the enclave to give a region back. Completion happens when the
    /// co-kernel acks and [`PiscesHost::process_acks`] handles it.
    pub fn request_remove_memory(&self, enclave: &Enclave, range: PhysRange) -> PiscesResult<()> {
        if !enclave.state().is_live() {
            return Err(PiscesError::BadState {
                enclave: enclave.id.0,
                op: "remove_memory",
            });
        }
        if !enclave.resources().mem.contains(&range) {
            return Err(PiscesError::Invalid(
                "region is not assigned to the enclave",
            ));
        }
        let ctrl = enclave
            .ctrl()
            .ok_or(PiscesError::Invalid("no control channel"))?;
        ctrl.send(&CtrlMsg::RemoveMem {
            start: range.start.raw(),
            len: range.len,
        })
        .map_err(|_| PiscesError::ResourceBusy("control channel full"))?;
        Ok(())
    }

    /// Drain and handle pending enclave→host control messages. Returns the
    /// messages that were processed.
    ///
    /// `RemoveMemAck` ordering (the Covirt contract): ack received →
    /// **hook** (EPT unmap + TLB flush, blocking) → partition shrinks →
    /// memory returns to the host allocator.
    pub fn process_acks(&self, enclave: &Enclave) -> PiscesResult<Vec<CtrlMsg>> {
        let ctrl = enclave
            .ctrl()
            .ok_or(PiscesError::Invalid("no control channel"))?;
        let mut handled = Vec::new();
        while let Some(msg) = ctrl
            .try_recv()
            .map_err(|_| PiscesError::Invalid("ctrl channel"))?
        {
            match &msg {
                CtrlMsg::RemoveMemAck { start, len } => {
                    let range = PhysRange::new(covirt_simhw::addr::HostPhysAddr::new(*start), *len);
                    self.run_hooks(|h| h.on_mem_remove_acked(enclave, range))?;
                    enclave
                        .with_resources_mut(|r| r.remove_mem(range))
                        .map_err(PiscesError::Invalid)?;
                    self.node.mem.free(range)?;
                }
                CtrlMsg::AddMemAck { .. } | CtrlMsg::PingAck { .. } | CtrlMsg::ShutdownAck => {}
                CtrlMsg::Syscall { nr, arg0, arg1 } => {
                    // Forwarded syscalls are executed "on the host" — the
                    // model simply answers; real work is in the hobbes
                    // layer.
                    let _ = (arg0, arg1);
                    ctrl.send(&CtrlMsg::SyscallRet { nr: *nr, ret: 0 })
                        .map_err(|_| PiscesError::ResourceBusy("control channel full"))?;
                }
                other => {
                    return Err(PiscesError::Invalid(match other {
                        CtrlMsg::AddMem { .. } => "unexpected AddMem from enclave",
                        CtrlMsg::RemoveMem { .. } => "unexpected RemoveMem from enclave",
                        _ => "unexpected message from enclave",
                    }))
                }
            }
            handled.push(msg);
        }
        Ok(handled)
    }

    /// Convenience: request removal and spin until the enclave acks and the
    /// reclaim completes (requires the enclave side to be polled by its own
    /// thread, or by `pump` below).
    pub fn remove_memory_sync(
        &self,
        enclave: &Enclave,
        range: PhysRange,
        spins: u64,
    ) -> PiscesResult<()> {
        self.request_remove_memory(enclave, range)?;
        for _ in 0..spins {
            self.process_acks(enclave)?;
            if !enclave.resources().mem.contains(&range) {
                return Ok(());
            }
            std::thread::yield_now();
        }
        Err(PiscesError::ResourceBusy(
            "timed out waiting for remove ack",
        ))
    }

    /// Allocate an IPI vector for the enclave from the global pool.
    pub fn alloc_vector(&self, enclave: &Enclave) -> PiscesResult<u8> {
        let v = self
            .vector_pool
            .lock()
            .pop_front()
            .ok_or(PiscesError::ResourceBusy("IPI vector pool exhausted"))?;
        if let Err(e) = self.run_hooks(|h| h.on_vector_alloc(enclave, v)) {
            self.vector_pool.lock().push_front(v);
            return Err(e);
        }
        enclave.with_resources_mut(|r| r.ipi_vectors.push(v));
        Ok(v)
    }

    /// Return a vector to the pool (hook first: the whitelist shrinks
    /// before the vector can be re-assigned).
    pub fn free_vector(&self, enclave: &Enclave, vector: u8) -> PiscesResult<()> {
        if !enclave.resources().has_vector(vector) {
            return Err(PiscesError::Invalid("vector not allocated to enclave"));
        }
        self.run_hooks(|h| h.on_vector_free(enclave, vector))?;
        enclave.with_resources_mut(|r| r.ipi_vectors.retain(|&x| x != vector));
        self.vector_pool.lock().push_back(vector);
        Ok(())
    }

    fn reclaim(&self, enclave: &Enclave) {
        let res = enclave.resources();
        for r in &res.mem {
            let _ = self.node.mem.free(*r);
        }
        let _ = self.node.mem.free(enclave.mgmt_region);
        {
            let mut assigned = self.assigned_cores.lock();
            for c in &res.cores {
                assigned.remove(&c.0);
            }
        }
        {
            let mut pool = self.vector_pool.lock();
            for v in &res.ipi_vectors {
                pool.push_back(*v);
            }
        }
        enclave.with_resources_mut(|r| *r = ResourceSpec::new());
    }

    /// Orderly teardown: hooks, reclaim, `Terminated`.
    pub fn teardown(&self, enclave: &Enclave) -> PiscesResult<()> {
        match enclave.state() {
            EnclaveState::Terminated | EnclaveState::Failed(_) => {
                return Err(PiscesError::BadState {
                    enclave: enclave.id.0,
                    op: "teardown",
                })
            }
            _ => {}
        }
        for h in self.hooks.read().iter() {
            h.on_teardown(enclave);
        }
        self.reclaim(enclave);
        enclave.set_state(EnclaveState::Terminated);
        Ok(())
    }

    /// Fault path: the hypervisor (or host policy) killed the enclave.
    /// Resources are reclaimed, the state records the reason, and the rest
    /// of the node keeps running — the isolation property Covirt provides.
    pub fn report_fault(&self, enclave: &Enclave, reason: &str) -> PiscesResult<()> {
        if matches!(
            enclave.state(),
            EnclaveState::Terminated | EnclaveState::Failed(_)
        ) {
            return Ok(()); // already dead; double reports are harmless
        }
        for h in self.hooks.read().iter() {
            h.on_teardown(enclave);
        }
        self.reclaim(enclave);
        enclave.set_state(EnclaveState::Failed(reason.to_owned()));
        Ok(())
    }

    /// Begin an orderly shutdown: ask the co-kernel to quiesce over the
    /// control channel. Completion is the `ShutdownAck` handled by
    /// [`PiscesHost::process_acks`]; callers then invoke
    /// [`PiscesHost::teardown`].
    pub fn request_shutdown(&self, enclave: &Enclave) -> PiscesResult<()> {
        if !enclave.state().is_live() {
            return Err(PiscesError::BadState {
                enclave: enclave.id.0,
                op: "shutdown",
            });
        }
        enclave.set_state(EnclaveState::ShuttingDown);
        let ctrl = enclave
            .ctrl()
            .ok_or(PiscesError::Invalid("no control channel"))?;
        ctrl.send(&CtrlMsg::Shutdown)
            .map_err(|_| PiscesError::ResourceBusy("control channel full"))
    }

    /// Orderly shutdown end-to-end: request, wait for the co-kernel's ack
    /// (the enclave side must be polled — by its own thread or by the
    /// caller alternating), then tear down. Spins up to `spins` polls.
    pub fn shutdown_enclave_sync(&self, enclave: &Enclave, spins: u64) -> PiscesResult<()> {
        self.request_shutdown(enclave)?;
        let ctrl = enclave
            .ctrl()
            .ok_or(PiscesError::Invalid("no control channel"))?;
        for _ in 0..spins {
            // Drain directly: process_acks treats ShutdownAck as benign.
            for msg in self.process_acks(enclave)? {
                if msg == CtrlMsg::ShutdownAck {
                    return self.teardown(enclave);
                }
            }
            let _ = ctrl; // keep the handle alive for clarity
            std::thread::yield_now();
        }
        Err(PiscesError::ResourceBusy(
            "co-kernel did not acknowledge shutdown",
        ))
    }

    /// Cores currently assigned (including core 0 = host).
    pub fn assigned_cores(&self) -> Vec<CoreId> {
        let mut v: Vec<CoreId> = self
            .assigned_cores
            .lock()
            .iter()
            .map(|&c| CoreId(c))
            .collect();
        v.sort();
        v
    }

    /// Number of free vectors remaining in the global pool.
    pub fn free_vector_count(&self) -> usize {
        self.vector_pool.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::node::NodeConfig;

    fn host() -> Arc<PiscesHost> {
        PiscesHost::new(SimNode::new(NodeConfig::small()))
    }

    fn small_req() -> ResourceRequest {
        ResourceRequest::new(
            vec![CoreId(1), CoreId(2)],
            vec![(ZoneId(0), 32 * 1024 * 1024)],
        )
    }

    #[test]
    fn create_assigns_resources() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        assert_eq!(e.state(), EnclaveState::Loaded);
        let res = e.resources();
        assert_eq!(res.cores, vec![CoreId(1), CoreId(2)]);
        assert_eq!(res.mem_bytes(), 32 * 1024 * 1024);
        assert_eq!(res.ipi_vectors.len(), 4);
        // Boot params are readable from memory.
        let bp = BootParams::read_from(&h.node().mem, e.mgmt_region.start).unwrap();
        assert_eq!(bp.enclave_id, e.id.0);
        assert_eq!(bp.mem_regions.len(), 1);
    }

    #[test]
    fn core_conflicts_rejected() {
        let h = host();
        let _e = h.create_enclave("e0", &small_req()).unwrap();
        let err = h.create_enclave("e1", &small_req()).unwrap_err();
        assert!(matches!(err, PiscesError::ResourceBusy(_)));
        // Core 0 is the host's.
        let err = h
            .create_enclave(
                "e2",
                &ResourceRequest::new(vec![CoreId(0)], vec![(ZoneId(0), 1024 * 1024)]),
            )
            .unwrap_err();
        assert!(matches!(err, PiscesError::ResourceBusy(_)));
    }

    #[test]
    fn launch_requires_loaded() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        let plan = h.launch(&e).unwrap();
        assert_eq!(plan.boot_core, CoreId(1));
        assert_eq!(plan.secondary_cores, vec![CoreId(2)]);
        assert!(matches!(plan.target, BootTarget::Kernel { .. }));
        assert_eq!(e.state(), EnclaveState::Running);
        assert!(matches!(h.launch(&e), Err(PiscesError::BadState { .. })));
    }

    #[test]
    fn add_memory_transmits_to_enclave() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        h.launch(&e).unwrap();
        let range = h.add_memory(&e, ZoneId(0), 4 * 1024 * 1024).unwrap();
        assert!(e.resources().mem.contains(&range));
        // The grant is visible on the enclave side of the channel.
        let bp = BootParams::read_from(&h.node().mem, e.mgmt_region.start).unwrap();
        let chan = CtrlChannel::attach_enclave(
            &h.node().mem,
            covirt_simhw::addr::HostPhysAddr::new(bp.ctrlchan_base),
            bp.ctrlchan_len,
        )
        .unwrap();
        let msg = chan.try_recv().unwrap().unwrap();
        assert_eq!(
            msg,
            CtrlMsg::AddMem {
                start: range.start.raw(),
                len: range.len
            }
        );
    }

    #[test]
    fn remove_memory_completes_on_ack() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        h.launch(&e).unwrap();
        let range = h.add_memory(&e, ZoneId(0), 2 * 1024 * 1024).unwrap();
        h.request_remove_memory(&e, range).unwrap();
        // Enclave side acks.
        let bp = BootParams::read_from(&h.node().mem, e.mgmt_region.start).unwrap();
        let chan = CtrlChannel::attach_enclave(
            &h.node().mem,
            covirt_simhw::addr::HostPhysAddr::new(bp.ctrlchan_base),
            bp.ctrlchan_len,
        )
        .unwrap();
        // Drain the AddMem + RemoveMem notifications, then ack removal.
        while chan.try_recv().unwrap().is_some() {}
        chan.send(&CtrlMsg::RemoveMemAck {
            start: range.start.raw(),
            len: range.len,
        })
        .unwrap();
        let handled = h.process_acks(&e).unwrap();
        assert_eq!(handled.len(), 1);
        assert!(!e.resources().mem.contains(&range));
    }

    #[test]
    fn vector_lifecycle() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        let before = h.free_vector_count();
        let v = h.alloc_vector(&e).unwrap();
        assert!(e.resources().has_vector(v));
        assert_eq!(h.free_vector_count(), before - 1);
        h.free_vector(&e, v).unwrap();
        assert!(!e.resources().has_vector(v));
        assert_eq!(h.free_vector_count(), before);
        assert!(h.free_vector(&e, 0x3f).is_err());
    }

    #[test]
    fn teardown_releases_everything() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        h.launch(&e).unwrap();
        let cores_before = h.assigned_cores().len();
        h.teardown(&e).unwrap();
        assert_eq!(e.state(), EnclaveState::Terminated);
        assert_eq!(h.assigned_cores().len(), cores_before - 2);
        // Memory is reusable: a same-size enclave can be created.
        let e2 = h.create_enclave("e1", &small_req()).unwrap();
        assert_eq!(e2.state(), EnclaveState::Loaded);
        // Double teardown is an error.
        assert!(h.teardown(&e).is_err());
    }

    #[test]
    fn fault_reclaims_and_records() {
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        h.launch(&e).unwrap();
        h.report_fault(&e, "ept violation at 0xdead0000").unwrap();
        match e.state() {
            EnclaveState::Failed(msg) => assert!(msg.contains("ept violation")),
            s => panic!("expected Failed, got {s:?}"),
        }
        // Idempotent.
        h.report_fault(&e, "again").unwrap();
        // Other enclaves can be created afterwards — the node survived.
        let e2 = h.create_enclave("e1", &small_req()).unwrap();
        assert_eq!(e2.state(), EnclaveState::Loaded);
    }

    #[test]
    fn hook_veto_aborts_grant() {
        struct Veto;
        impl EnclaveHooks for Veto {
            fn on_mem_add_prepared(&self, _e: &Enclave, _r: PhysRange) -> PiscesResult<()> {
                Err(PiscesError::Vetoed("test"))
            }
        }
        let h = host();
        let e = h.create_enclave("e0", &small_req()).unwrap();
        h.launch(&e).unwrap();
        h.register_hooks(Arc::new(Veto));
        let before = e.resources().mem_bytes();
        assert!(matches!(
            h.add_memory(&e, ZoneId(0), 1024 * 1024),
            Err(PiscesError::Vetoed(_))
        ));
        assert_eq!(
            e.resources().mem_bytes(),
            before,
            "vetoed grant must not stick"
        );
    }

    #[test]
    fn boot_plan_interposition() {
        struct Interpose;
        impl EnclaveHooks for Interpose {
            fn on_boot_plan(&self, _e: &Enclave, mut plan: BootPlan) -> PiscesResult<BootPlan> {
                plan.target = BootTarget::Interposed {
                    layer: "covirt".into(),
                    layer_params_addr: plan.pisces_params_addr.add(0x1000),
                };
                Ok(plan)
            }
        }
        let h = host();
        h.register_hooks(Arc::new(Interpose));
        let e = h.create_enclave("e0", &small_req()).unwrap();
        let plan = h.launch(&e).unwrap();
        match plan.target {
            BootTarget::Interposed { layer, .. } => assert_eq!(layer, "covirt"),
            t => panic!("expected interposed target, got {t:?}"),
        }
        // The original params pointer is preserved for the co-kernel.
        assert_eq!(plan.pisces_params_addr, e.mgmt_region.start);
    }
}
