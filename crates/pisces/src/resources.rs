//! Enclave resource partitions: cores, memory regions, IPI vectors.

use covirt_simhw::addr::PhysRange;
use covirt_simhw::topology::{CoreId, ZoneId};
use serde::{Deserialize, Serialize};

/// What an enclave is *assigned* (requested at creation, then dynamically
/// grown/shrunk). This is the co-operative partition Pisces maintains; the
/// point of Covirt is that nothing in *hardware* enforces it until the
/// hypervisor is interposed.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Cores assigned to the enclave.
    pub cores: Vec<CoreId>,
    /// Memory regions assigned, identity-visible to the co-kernel.
    pub mem: Vec<PhysRange>,
    /// Per-core IPI vectors allocated to the enclave (Hobbes treats these
    /// as a globally allocatable resource).
    pub ipi_vectors: Vec<u8>,
}

impl ResourceSpec {
    /// Empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total assigned memory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem.iter().map(|r| r.len).sum()
    }

    /// True if `range` is fully covered by (a single one of) the assigned
    /// regions.
    pub fn covers(&self, range: &PhysRange) -> bool {
        self.mem.iter().any(|r| r.covers(range))
    }

    /// True if the core belongs to the partition.
    pub fn has_core(&self, core: CoreId) -> bool {
        self.cores.contains(&core)
    }

    /// True if the vector is allocated to the partition.
    pub fn has_vector(&self, vector: u8) -> bool {
        self.ipi_vectors.contains(&vector)
    }

    /// Add a memory region (must not overlap existing assignment).
    pub fn add_mem(&mut self, range: PhysRange) -> Result<(), &'static str> {
        if self.mem.iter().any(|r| r.overlaps(&range)) {
            return Err("region overlaps existing assignment");
        }
        self.mem.push(range);
        self.mem.sort_by_key(|r| r.start.raw());
        Ok(())
    }

    /// Remove a memory region (exact match).
    pub fn remove_mem(&mut self, range: PhysRange) -> Result<(), &'static str> {
        match self.mem.iter().position(|r| *r == range) {
            Some(i) => {
                self.mem.remove(i);
                Ok(())
            }
            None => Err("region not assigned"),
        }
    }
}

/// A request for enclave resources, resolved against the node by the host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceRequest {
    /// Explicit cores to take.
    pub cores: Vec<CoreId>,
    /// Memory to allocate per zone: `(zone, bytes)`.
    pub mem_per_zone: Vec<(ZoneId, u64)>,
    /// Number of IPI vectors to allocate.
    pub num_ipi_vectors: usize,
}

impl ResourceRequest {
    /// Request `cores` plus `bytes_per_zone` in each of `zones`, and a
    /// default of 4 IPI vectors.
    pub fn new(cores: Vec<CoreId>, mem_per_zone: Vec<(ZoneId, u64)>) -> Self {
        ResourceRequest {
            cores,
            mem_per_zone,
            num_ipi_vectors: 4,
        }
    }

    /// The paper's enclave shape: `layout` cores and `total_mem` split
    /// evenly across the layout's zones.
    pub fn from_layout(
        layout: covirt_simhw::topology::HwLayout,
        topo: &covirt_simhw::topology::Topology,
        total_mem: u64,
    ) -> Self {
        let cores = layout.pick_cores(topo);
        let zones = layout.pick_zones();
        let per = total_mem / zones.len() as u64;
        let mem = zones.into_iter().map(|z| (z, per)).collect();
        ResourceRequest::new(cores, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::HostPhysAddr;
    use covirt_simhw::topology::{HwLayout, Topology};

    fn r(start: u64, len: u64) -> PhysRange {
        PhysRange::new(HostPhysAddr::new(start), len)
    }

    #[test]
    fn add_remove_mem() {
        let mut s = ResourceSpec::new();
        s.add_mem(r(0x1000, 0x1000)).unwrap();
        s.add_mem(r(0x4000, 0x2000)).unwrap();
        assert_eq!(s.mem_bytes(), 0x3000);
        assert!(
            s.add_mem(r(0x4800, 0x100)).is_err(),
            "overlap must be rejected"
        );
        s.remove_mem(r(0x1000, 0x1000)).unwrap();
        assert!(s.remove_mem(r(0x1000, 0x1000)).is_err());
        assert_eq!(s.mem_bytes(), 0x2000);
    }

    #[test]
    fn covers_checks_single_region() {
        let mut s = ResourceSpec::new();
        s.add_mem(r(0x1000, 0x1000)).unwrap();
        assert!(s.covers(&r(0x1800, 0x100)));
        assert!(
            !s.covers(&r(0x1800, 0x1000)),
            "straddling the end is not covered"
        );
    }

    #[test]
    fn vector_and_core_membership() {
        let s = ResourceSpec {
            cores: vec![CoreId(2), CoreId(3)],
            mem: vec![],
            ipi_vectors: vec![0x40, 0x41],
        };
        assert!(s.has_core(CoreId(2)));
        assert!(!s.has_core(CoreId(0)));
        assert!(s.has_vector(0x41));
        assert!(!s.has_vector(0x42));
    }

    #[test]
    fn request_from_layout_splits_memory() {
        let topo = Topology::paper_testbed();
        let req = ResourceRequest::from_layout(HwLayout { cores: 8, zones: 2 }, &topo, 14 << 30);
        assert_eq!(req.cores.len(), 8);
        assert_eq!(req.mem_per_zone.len(), 2);
        assert_eq!(req.mem_per_zone[0].1, 7 << 30);
        assert_eq!(req.mem_per_zone[1].1, 7 << 30);
    }
}
