//! The host ⇄ enclave control channel (Pisces' "longcall" interface).
//!
//! Each enclave gets a pair of shared-memory rings: host→enclave for
//! resource-management commands, enclave→host for acknowledgements and
//! forwarded system calls. Messages are fixed 64-byte records encoded with
//! the [`crate::wire`] codec, because that is how the real framework moves
//! them — as C structs in shared physical memory, not as Rust objects.

use crate::ring::{RingError, SharedRing};
use crate::wire::{WireError, WireReader, WireWriter};
use covirt_simhw::addr::{HostPhysAddr, PhysRange};
use covirt_simhw::memory::PhysMemory;
use covirt_trace::{pack_str, EventKind, Tracer};

/// Slot size of control messages.
pub const CTRL_SLOT: u64 = 64;
/// Slots per direction.
pub const CTRL_SLOTS: u64 = 64;

/// A control message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Host → enclave: a memory region has been granted; extend your map.
    AddMem {
        /// Base of the granted region.
        start: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Enclave → host: the granted region is now mapped.
    AddMemAck {
        /// Base of the region.
        start: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Host → enclave: release this region; unmap and acknowledge.
    RemoveMem {
        /// Base of the region being reclaimed.
        start: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Enclave → host: region unmapped from the co-kernel's memory map.
    RemoveMemAck {
        /// Base of the region.
        start: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Enclave → host: a forwarded system call (Kitten delegates
    /// heavy-weight syscalls to the host OS/R).
    Syscall {
        /// Syscall number.
        nr: u64,
        /// First argument.
        arg0: u64,
        /// Second argument.
        arg1: u64,
    },
    /// Host → enclave: result of a forwarded system call.
    SyscallRet {
        /// Syscall number this answers.
        nr: u64,
        /// Return value.
        ret: u64,
    },
    /// Host → enclave: orderly shutdown request.
    Shutdown,
    /// Enclave → host: shutdown complete.
    ShutdownAck,
    /// Liveness probe (either direction).
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Liveness response.
    PingAck {
        /// Echoed token.
        token: u64,
    },
}

const TAG_ADD_MEM: u64 = 1;
const TAG_ADD_MEM_ACK: u64 = 2;
const TAG_REMOVE_MEM: u64 = 3;
const TAG_REMOVE_MEM_ACK: u64 = 4;
const TAG_SYSCALL: u64 = 5;
const TAG_SYSCALL_RET: u64 = 6;
const TAG_SHUTDOWN: u64 = 7;
const TAG_SHUTDOWN_ACK: u64 = 8;
const TAG_PING: u64 = 9;
const TAG_PING_ACK: u64 = 10;

impl CtrlMsg {
    /// Short wire-level name of this message kind (trace labels).
    pub fn tag_name(&self) -> &'static str {
        match self {
            CtrlMsg::AddMem { .. } => "add_mem",
            CtrlMsg::AddMemAck { .. } => "add_mem_ack",
            CtrlMsg::RemoveMem { .. } => "remove_mem",
            CtrlMsg::RemoveMemAck { .. } => "remove_mem_ack",
            CtrlMsg::Syscall { .. } => "syscall",
            CtrlMsg::SyscallRet { .. } => "syscall_ret",
            CtrlMsg::Shutdown => "shutdown",
            CtrlMsg::ShutdownAck => "shutdown_ack",
            CtrlMsg::Ping { .. } => "ping",
            CtrlMsg::PingAck { .. } => "ping_ack",
        }
    }

    /// Encode into a fixed-size slot payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            CtrlMsg::AddMem { start, len } => {
                w.put_u64(TAG_ADD_MEM).put_u64(*start).put_u64(*len);
            }
            CtrlMsg::AddMemAck { start, len } => {
                w.put_u64(TAG_ADD_MEM_ACK).put_u64(*start).put_u64(*len);
            }
            CtrlMsg::RemoveMem { start, len } => {
                w.put_u64(TAG_REMOVE_MEM).put_u64(*start).put_u64(*len);
            }
            CtrlMsg::RemoveMemAck { start, len } => {
                w.put_u64(TAG_REMOVE_MEM_ACK).put_u64(*start).put_u64(*len);
            }
            CtrlMsg::Syscall { nr, arg0, arg1 } => {
                w.put_u64(TAG_SYSCALL)
                    .put_u64(*nr)
                    .put_u64(*arg0)
                    .put_u64(*arg1);
            }
            CtrlMsg::SyscallRet { nr, ret } => {
                w.put_u64(TAG_SYSCALL_RET).put_u64(*nr).put_u64(*ret);
            }
            CtrlMsg::Shutdown => {
                w.put_u64(TAG_SHUTDOWN);
            }
            CtrlMsg::ShutdownAck => {
                w.put_u64(TAG_SHUTDOWN_ACK);
            }
            CtrlMsg::Ping { token } => {
                w.put_u64(TAG_PING).put_u64(*token);
            }
            CtrlMsg::PingAck { token } => {
                w.put_u64(TAG_PING_ACK).put_u64(*token);
            }
        }
        w.finish()
    }

    /// Decode from a slot payload.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let tag = r.get_u64()?;
        Ok(match tag {
            TAG_ADD_MEM => CtrlMsg::AddMem {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            TAG_ADD_MEM_ACK => CtrlMsg::AddMemAck {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            TAG_REMOVE_MEM => CtrlMsg::RemoveMem {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            TAG_REMOVE_MEM_ACK => CtrlMsg::RemoveMemAck {
                start: r.get_u64()?,
                len: r.get_u64()?,
            },
            TAG_SYSCALL => CtrlMsg::Syscall {
                nr: r.get_u64()?,
                arg0: r.get_u64()?,
                arg1: r.get_u64()?,
            },
            TAG_SYSCALL_RET => CtrlMsg::SyscallRet {
                nr: r.get_u64()?,
                ret: r.get_u64()?,
            },
            TAG_SHUTDOWN => CtrlMsg::Shutdown,
            TAG_SHUTDOWN_ACK => CtrlMsg::ShutdownAck,
            TAG_PING => CtrlMsg::Ping {
                token: r.get_u64()?,
            },
            TAG_PING_ACK => CtrlMsg::PingAck {
                token: r.get_u64()?,
            },
            _ => return Err(WireError),
        })
    }
}

/// One endpoint of the control channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The host (Linux + Pisces module) end.
    Host,
    /// The enclave (co-kernel) end.
    Enclave,
}

/// The control channel: two SPSC rings over one shared region.
///
/// Layout: ring A (host→enclave) at `base`, ring B (enclave→host) at
/// `base + half`.
#[derive(Clone)]
pub struct CtrlChannel {
    side: Side,
    to_enclave: SharedRing,
    to_host: SharedRing,
    /// Flight-recorder handle; control traffic emits trace events when set.
    tracer: Option<Tracer>,
}

impl CtrlChannel {
    /// Bytes of shared memory a channel needs.
    pub fn required_bytes() -> u64 {
        2 * SharedRing::required_bytes(CTRL_SLOTS, CTRL_SLOT).next_power_of_two()
    }

    /// Format a channel into `range` (host side does this at enclave
    /// creation).
    pub fn create(mem: &PhysMemory, range: PhysRange) -> Result<Self, RingError> {
        let half = range.len / 2;
        let a = PhysRange::new(range.start, half);
        let b = PhysRange::new(range.start.add(half), range.len - half);
        Ok(CtrlChannel {
            side: Side::Host,
            to_enclave: SharedRing::create(mem, a, CTRL_SLOTS, CTRL_SLOT)?,
            to_host: SharedRing::create(mem, b, CTRL_SLOTS, CTRL_SLOT)?,
            tracer: None,
        })
    }

    /// Attach from the enclave side, given the base address and total
    /// length out of the boot parameters.
    pub fn attach_enclave(
        mem: &PhysMemory,
        base: HostPhysAddr,
        total_len: u64,
    ) -> Result<Self, RingError> {
        let half = total_len / 2;
        Ok(CtrlChannel {
            side: Side::Enclave,
            to_enclave: SharedRing::attach(mem, base)?,
            to_host: SharedRing::attach(mem, base.add(half))?,
            tracer: None,
        })
    }

    /// Which side this handle represents.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Attach a flight-recorder handle; this clone (and clones made from
    /// it) will trace control traffic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    fn tx(&self) -> &SharedRing {
        match self.side {
            Side::Host => &self.to_enclave,
            Side::Enclave => &self.to_host,
        }
    }

    fn rx(&self) -> &SharedRing {
        match self.side {
            Side::Host => &self.to_host,
            Side::Enclave => &self.to_enclave,
        }
    }

    /// Send a message toward the peer.
    pub fn send(&self, msg: &CtrlMsg) -> Result<(), RingError> {
        self.tx().push(&msg.encode())?;
        if let Some(t) = &self.tracer {
            let (a, b) = pack_str(msg.tag_name());
            t.emit(EventKind::CtrlSend, a, b);
        }
        Ok(())
    }

    /// Non-blocking receive from the peer.
    pub fn try_recv(&self) -> Result<Option<CtrlMsg>, RingError> {
        match self.rx().pop() {
            Ok(buf) => {
                let msg = CtrlMsg::decode(&buf).map_err(|_| RingError::Corrupt)?;
                if let Some(t) = &self.tracer {
                    let (a, b) = pack_str(msg.tag_name());
                    t.emit(EventKind::CtrlRecv, a, b);
                }
                Ok(Some(msg))
            }
            Err(RingError::Empty) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Spin until a message arrives or `spins` polls elapse.
    pub fn recv_spin(&self, spins: u64) -> Result<CtrlMsg, RingError> {
        for _ in 0..spins {
            if let Some(m) = self.try_recv()? {
                return Ok(m);
            }
            std::thread::yield_now();
        }
        Err(RingError::Empty)
    }

    /// Messages queued toward this side.
    pub fn pending(&self) -> u64 {
        self.rx().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::addr::PAGE_SIZE_4K;
    use covirt_simhw::topology::ZoneId;
    use std::sync::Arc;

    fn channel() -> (Arc<PhysMemory>, PhysRange, CtrlChannel) {
        let mem = Arc::new(PhysMemory::new(&[16 * 1024 * 1024]));
        let range = mem
            .alloc_backed(ZoneId(0), CtrlChannel::required_bytes(), PAGE_SIZE_4K)
            .unwrap();
        let ch = CtrlChannel::create(&mem, range).unwrap();
        (mem, range, ch)
    }

    #[test]
    fn encode_decode_all_variants() {
        let msgs = [
            CtrlMsg::AddMem { start: 1, len: 2 },
            CtrlMsg::AddMemAck { start: 1, len: 2 },
            CtrlMsg::RemoveMem { start: 3, len: 4 },
            CtrlMsg::RemoveMemAck { start: 3, len: 4 },
            CtrlMsg::Syscall {
                nr: 60,
                arg0: 1,
                arg1: 2,
            },
            CtrlMsg::SyscallRet { nr: 60, ret: 0 },
            CtrlMsg::Shutdown,
            CtrlMsg::ShutdownAck,
            CtrlMsg::Ping { token: 99 },
            CtrlMsg::PingAck { token: 99 },
        ];
        for m in msgs {
            let e = m.encode();
            assert!(e.len() as u64 <= CTRL_SLOT, "message too large for slot");
            assert_eq!(CtrlMsg::decode(&e).unwrap(), m);
        }
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(CtrlMsg::decode(&[0xffu8; 64]).is_err());
        assert!(CtrlMsg::decode(&[]).is_err());
    }

    #[test]
    fn host_to_enclave_roundtrip() {
        let (mem, range, host) = channel();
        let enclave = CtrlChannel::attach_enclave(&mem, range.start, range.len).unwrap();
        host.send(&CtrlMsg::AddMem {
            start: 0x100000,
            len: 0x2000,
        })
        .unwrap();
        assert_eq!(enclave.pending(), 1);
        let got = enclave.try_recv().unwrap().unwrap();
        assert_eq!(
            got,
            CtrlMsg::AddMem {
                start: 0x100000,
                len: 0x2000
            }
        );
        enclave
            .send(&CtrlMsg::AddMemAck {
                start: 0x100000,
                len: 0x2000,
            })
            .unwrap();
        let ack = host.try_recv().unwrap().unwrap();
        assert_eq!(
            ack,
            CtrlMsg::AddMemAck {
                start: 0x100000,
                len: 0x2000
            }
        );
    }

    #[test]
    fn directions_are_independent() {
        let (mem, range, host) = channel();
        let enclave = CtrlChannel::attach_enclave(&mem, range.start, range.len).unwrap();
        enclave.send(&CtrlMsg::Ping { token: 7 }).unwrap();
        // Host rx has one message; enclave rx none.
        assert_eq!(host.pending(), 1);
        assert_eq!(enclave.pending(), 0);
        assert!(enclave.try_recv().unwrap().is_none());
    }

    #[test]
    fn recv_spin_times_out() {
        let (_mem, _range, host) = channel();
        assert_eq!(host.recv_spin(10), Err(RingError::Empty));
    }
}
