//! The userspace management ABI (`/dev/pisces` ioctls) with an extension
//! registry.
//!
//! Covirt's userspace control module "piggy-backs on the Pisces kernel ABI
//! by adding a new set of ioctl commands". The dispatcher below reproduces
//! that: built-in commands are handled by the framework; unknown command
//! numbers in the extension space are routed to registered extensions.

use crate::host::PiscesHost;
use crate::resources::ResourceRequest;
use crate::{EnclaveId, PiscesError, PiscesResult};
use covirt_simhw::addr::{HostPhysAddr, PhysRange};
use covirt_simhw::topology::{CoreId, ZoneId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// First command number reserved for extensions (Covirt uses this space).
pub const EXTENSION_BASE: u32 = 0x8000_0000;

/// Built-in management commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PiscesCtl {
    /// Liveness check.
    Ping,
    /// Create an enclave.
    CreateEnclave {
        /// Name for the enclave.
        name: String,
        /// Cores to assign.
        cores: Vec<usize>,
        /// Memory per zone: `(zone, bytes)`.
        mem: Vec<(usize, u64)>,
    },
    /// Launch a loaded enclave.
    Launch {
        /// Target enclave.
        enclave: u64,
    },
    /// Grant memory.
    AddMem {
        /// Target enclave.
        enclave: u64,
        /// Zone to allocate from.
        zone: usize,
        /// Bytes to grant.
        bytes: u64,
    },
    /// Begin memory reclamation.
    RemoveMem {
        /// Target enclave.
        enclave: u64,
        /// Region start.
        start: u64,
        /// Region length.
        len: u64,
    },
    /// Tear an enclave down.
    Teardown {
        /// Target enclave.
        enclave: u64,
    },
    /// List enclave ids.
    List,
}

/// Replies from the dispatcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtlReply {
    /// Generic success.
    Ok,
    /// Created/affected enclave id.
    EnclaveId(u64),
    /// A memory region.
    Region {
        /// Start address.
        start: u64,
        /// Length.
        len: u64,
    },
    /// Enclave ids.
    List(Vec<u64>),
    /// Raw bytes from an extension.
    Raw(Vec<u8>),
}

/// An ioctl extension (Covirt registers one of these).
pub trait IoctlExtension: Send + Sync {
    /// Handle extension command `nr` with `payload`, returning reply bytes.
    fn handle(&self, nr: u32, payload: &[u8]) -> PiscesResult<Vec<u8>>;
}

/// Routes commands to the framework or to registered extensions.
pub struct IoctlDispatcher {
    host: Arc<PiscesHost>,
    extensions: RwLock<HashMap<u32, Arc<dyn IoctlExtension>>>,
}

impl IoctlDispatcher {
    /// Build a dispatcher over `host`.
    pub fn new(host: Arc<PiscesHost>) -> Self {
        IoctlDispatcher {
            host,
            extensions: RwLock::new(HashMap::new()),
        }
    }

    /// Register an extension for command number `nr` (must be in the
    /// extension space).
    pub fn register_extension(&self, nr: u32, ext: Arc<dyn IoctlExtension>) -> PiscesResult<()> {
        if nr < EXTENSION_BASE {
            return Err(PiscesError::Invalid(
                "extension number below EXTENSION_BASE",
            ));
        }
        let mut map = self.extensions.write();
        if map.contains_key(&nr) {
            return Err(PiscesError::ResourceBusy(
                "extension number already registered",
            ));
        }
        map.insert(nr, ext);
        Ok(())
    }

    /// Execute a built-in command.
    pub fn ioctl(&self, cmd: PiscesCtl) -> PiscesResult<CtlReply> {
        match cmd {
            PiscesCtl::Ping => Ok(CtlReply::Ok),
            PiscesCtl::CreateEnclave { name, cores, mem } => {
                let req = ResourceRequest::new(
                    cores.into_iter().map(CoreId).collect(),
                    mem.into_iter().map(|(z, b)| (ZoneId(z), b)).collect(),
                );
                let e = self.host.create_enclave(&name, &req)?;
                Ok(CtlReply::EnclaveId(e.id.0))
            }
            PiscesCtl::Launch { enclave } => {
                let e = self.host.enclave(EnclaveId(enclave))?;
                self.host.launch(&e)?;
                Ok(CtlReply::EnclaveId(enclave))
            }
            PiscesCtl::AddMem {
                enclave,
                zone,
                bytes,
            } => {
                let e = self.host.enclave(EnclaveId(enclave))?;
                let r = self.host.add_memory(&e, ZoneId(zone), bytes)?;
                Ok(CtlReply::Region {
                    start: r.start.raw(),
                    len: r.len,
                })
            }
            PiscesCtl::RemoveMem {
                enclave,
                start,
                len,
            } => {
                let e = self.host.enclave(EnclaveId(enclave))?;
                self.host
                    .request_remove_memory(&e, PhysRange::new(HostPhysAddr::new(start), len))?;
                Ok(CtlReply::Ok)
            }
            PiscesCtl::Teardown { enclave } => {
                let e = self.host.enclave(EnclaveId(enclave))?;
                self.host.teardown(&e)?;
                Ok(CtlReply::Ok)
            }
            PiscesCtl::List => Ok(CtlReply::List(
                self.host.enclaves().iter().map(|e| e.id.0).collect(),
            )),
        }
    }

    /// Execute a raw (possibly extension) command.
    pub fn ioctl_raw(&self, nr: u32, payload: &[u8]) -> PiscesResult<Vec<u8>> {
        if nr >= EXTENSION_BASE {
            let ext = self
                .extensions
                .read()
                .get(&nr)
                .cloned()
                .ok_or(PiscesError::Invalid("unknown extension command"))?;
            return ext.handle(nr, payload);
        }
        Err(PiscesError::Invalid(
            "raw dispatch of built-in commands is not supported",
        ))
    }

    /// The host behind this dispatcher.
    pub fn host(&self) -> &Arc<PiscesHost> {
        &self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covirt_simhw::node::{NodeConfig, SimNode};

    fn dispatcher() -> IoctlDispatcher {
        IoctlDispatcher::new(PiscesHost::new(SimNode::new(NodeConfig::small())))
    }

    #[test]
    fn ping() {
        let d = dispatcher();
        assert_eq!(d.ioctl(PiscesCtl::Ping).unwrap(), CtlReply::Ok);
    }

    #[test]
    fn full_lifecycle_via_ioctls() {
        let d = dispatcher();
        let reply = d
            .ioctl(PiscesCtl::CreateEnclave {
                name: "e0".into(),
                cores: vec![1, 2],
                mem: vec![(0, 32 * 1024 * 1024)],
            })
            .unwrap();
        let id = match reply {
            CtlReply::EnclaveId(id) => id,
            r => panic!("unexpected reply {r:?}"),
        };
        d.ioctl(PiscesCtl::Launch { enclave: id }).unwrap();
        let r = d
            .ioctl(PiscesCtl::AddMem {
                enclave: id,
                zone: 0,
                bytes: 1024 * 1024,
            })
            .unwrap();
        assert!(matches!(r, CtlReply::Region { .. }));
        assert_eq!(d.ioctl(PiscesCtl::List).unwrap(), CtlReply::List(vec![id]));
        d.ioctl(PiscesCtl::Teardown { enclave: id }).unwrap();
    }

    #[test]
    fn unknown_enclave_errors() {
        let d = dispatcher();
        assert!(matches!(
            d.ioctl(PiscesCtl::Launch { enclave: 42 }),
            Err(PiscesError::NoSuchEnclave(42))
        ));
    }

    #[test]
    fn extension_registration_and_dispatch() {
        struct Echo;
        impl IoctlExtension for Echo {
            fn handle(&self, _nr: u32, payload: &[u8]) -> PiscesResult<Vec<u8>> {
                Ok(payload.to_vec())
            }
        }
        let d = dispatcher();
        assert!(
            d.register_extension(5, Arc::new(Echo)).is_err(),
            "below extension base"
        );
        d.register_extension(EXTENSION_BASE + 1, Arc::new(Echo))
            .unwrap();
        assert!(
            d.register_extension(EXTENSION_BASE + 1, Arc::new(Echo))
                .is_err(),
            "duplicate registration"
        );
        let out = d.ioctl_raw(EXTENSION_BASE + 1, b"covirt-cfg").unwrap();
        assert_eq!(out, b"covirt-cfg");
        assert!(d.ioctl_raw(EXTENSION_BASE + 2, b"").is_err());
        assert!(d.ioctl_raw(3, b"").is_err());
    }
}
